package tsdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fill appends a generated series to a store, returning the points.
func fill(st *Store, target, metric string, seed int64, n int) []Point {
	pts := genPoints(rand.New(rand.NewSource(seed)), n)
	for _, pt := range pts {
		if pt.Gap {
			st.AppendGap(target, metric, pt.T)
		} else {
			st.Append(target, metric, pt.T, pt.V)
		}
	}
	return pts
}

func TestStoreMaterializeAcrossSeals(t *testing.T) {
	st := New()
	pts := fill(st, "fixw", "routes", 1, 3*BlockPoints+17)
	if got := st.Len("fixw", "routes"); got != len(pts) {
		t.Fatalf("Len = %d, want %d", got, len(pts))
	}
	got, err := st.Materialize("fixw", "routes")
	if err != nil {
		t.Fatal(err)
	}
	if !pointsEqual(pts, got) {
		t.Fatal("materialized series differs from appended points")
	}
	if m, err := st.Materialize("ghost", "routes"); err != nil || m != nil {
		t.Fatalf("unseen series = %v, %v", m, err)
	}
}

func TestStoreTargetsSorted(t *testing.T) {
	st := New()
	for _, name := range []string{"zulu", "alpha", "mike"} {
		st.Append(name, "routes", 1e18, 1)
	}
	if got := st.Targets(); !reflect.DeepEqual(got, []string{"alpha", "mike", "zulu"}) {
		t.Fatalf("Targets = %v", got)
	}
}

// TestStoreExportImportIdentity proves transfer state round-trips: the
// imported store answers every query byte-identically, including tier
// ranges whose buckets must rebuild on absolute point indices.
func TestStoreExportImportIdentity(t *testing.T) {
	a := New()
	fill(a, "fixw", "routes", 3, 2*BlockPoints+91)
	fill(a, "fixw", "sessions", 4, BlockPoints/2)
	fill(a, "ucsb-r1", "routes", 5, 4*BlockPoints+1)

	b := New()
	if err := b.Import(a.Export()); err != nil {
		t.Fatal(err)
	}
	c := New() // per-target path, the handoff seam
	for _, target := range a.Targets() {
		if err := c.ImportTarget(target, a.ExportTarget(target)); err != nil {
			t.Fatal(err)
		}
	}

	queries := []Query{
		{Metric: "routes", Op: OpRange},
		{Metric: "routes", Op: OpRange, Tier: Tier10},
		{Metric: "routes", Op: OpRange, Tier: Tier100},
		{Metric: "routes", Op: OpAvg},
		{Metric: "routes", Op: OpRate},
		{Metric: "sessions", Op: OpMax},
		{Metric: "routes", Op: OpTopK, K: 1, By: "sum"},
	}
	for _, q := range queries {
		want, err := a.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for name, other := range map[string]*Store{"Import": b, "ImportTarget": c} {
			got, err := other.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: query %+v differs after transfer", name, q)
			}
		}
	}
}

// TestQueryAggregates pins exact aggregate semantics on a hand-built
// series.
func TestQueryAggregates(t *testing.T) {
	st := New()
	base := time.Date(2001, 3, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	vals := []float64{10, 20, 5, 5, 40}
	for i, v := range vals {
		st.Append("r1", "m", base+int64(i)*1e9, v)
	}
	st.AppendGap("r1", "m", base+5*1e9)

	agg := func(op Op) *Agg {
		res, err := st.Query(Query{Metric: "m", Op: op})
		if err != nil {
			t.Fatal(err)
		}
		return res.Targets[0].Agg
	}
	a := agg(OpAvg)
	if a.Count != 5 || a.Min != 5 || a.Max != 40 || a.Sum != 80 || a.Avg != 16 {
		t.Fatalf("agg = %+v", a)
	}
	if a.First != 10 || a.Last != 40 {
		t.Fatalf("endpoints = %+v", a)
	}
	// rate: (40-10)/4s
	if r := agg(OpRate); r.Rate != 7.5 {
		t.Fatalf("rate = %v", r.Rate)
	}

	// Bounded: only the middle three points.
	res, err := st.Query(Query{Metric: "m", Op: OpSum, From: base + 1e9, To: base + 3*1e9})
	if err != nil {
		t.Fatal(err)
	}
	if a := res.Targets[0].Agg; a.Count != 3 || a.Sum != 30 {
		t.Fatalf("bounded agg = %+v", a)
	}

	// Out of range: nil Agg.
	res, err = st.Query(Query{Metric: "m", Op: OpSum, From: base + 100e9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets[0].Agg != nil {
		t.Fatal("empty range produced an aggregate")
	}

	// Range includes the gap marker.
	res, err = st.Query(Query{Metric: "m", Op: OpRange})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Targets[0].Points
	if len(pts) != 6 || !pts[5].Gap {
		t.Fatalf("range = %v", pts)
	}
}

// TestQueryHeaderFastPathMatchesDecode forces both aggregate paths —
// header-only for contained blocks, decode for partial overlap — to
// agree on the same data.
func TestQueryHeaderFastPathMatchesDecode(t *testing.T) {
	st := New()
	pts := fill(st, "r1", "m", 11, 3*BlockPoints)
	lo, hi := pts[0].T, pts[len(pts)-1].T
	whole, err := st.Query(Query{Metric: "m", Op: OpAvg}) // header fast path
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := st.Query(Query{Metric: "m", Op: OpAvg, From: lo, To: hi}) // same span, still contained
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole, bounded) {
		t.Fatal("contained-bounds aggregate differs from unbounded")
	}
	// Shift the lower bound one nanosecond past the first point: the
	// first block must now decode, and the fold must drop exactly one
	// point.
	part, err := st.Query(Query{Metric: "m", Op: OpCount, From: pts[0].T + 1, To: hi})
	if err != nil {
		t.Fatal(err)
	}
	wholeCount, err := st.Query(Query{Metric: "m", Op: OpCount})
	if err != nil {
		t.Fatal(err)
	}
	drop := 0
	if !pts[0].Gap {
		drop = 1
	}
	if part.Targets[0].Agg.Count != wholeCount.Targets[0].Agg.Count-drop {
		t.Fatalf("partial count %d, whole %d", part.Targets[0].Agg.Count, wholeCount.Targets[0].Agg.Count)
	}
}

// TestTierRange checks downsampled ranges: one point per bucket, bucket
// averages, gap-only buckets as gap points.
func TestTierRange(t *testing.T) {
	st := New()
	base := int64(1e18)
	for i := 0; i < 25; i++ {
		st.Append("r1", "m", base+int64(i)*1e9, float64(i))
	}
	res, err := st.Query(Query{Metric: "m", Op: OpRange, Tier: Tier10})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Targets[0].Points
	if len(pts) != 3 {
		t.Fatalf("tier10 points = %d", len(pts))
	}
	if pts[0].V != 4.5 || pts[1].V != 14.5 || pts[2].V != 22 {
		t.Fatalf("tier10 averages = %v", pts)
	}
	if pts[0].T != base || pts[1].T != base+10*1e9 {
		t.Fatalf("bucket anchors = %v", pts)
	}

	gapped := New()
	for i := 0; i < 10; i++ {
		gapped.AppendGap("r1", "m", base+int64(i)*1e9)
	}
	gapped.Append("r1", "m", base+10*1e9, 7)
	res, err = gapped.Query(Query{Metric: "m", Op: OpRange, Tier: Tier10})
	if err != nil {
		t.Fatal(err)
	}
	pts = res.Targets[0].Points
	if len(pts) != 2 || !pts[0].Gap || pts[1].V != 7 {
		t.Fatalf("gap bucket = %v", pts)
	}
}

// TestSplitExecutionMatchesSingleStore is the shard-invariance property
// at the unit level: partition targets across any number of stores,
// QueryTarget each shard locally, Assemble the parts — identical result
// to one store holding everything, for every op.
func TestSplitExecutionMatchesSingleStore(t *testing.T) {
	targets := []string{"r1", "r2", "r3", "r4", "r5", "r6", "r7"}
	one := New()
	for i, name := range targets {
		fill(one, name, "m", int64(20+i), BlockPoints+37*i)
	}
	ops := []Query{
		{Metric: "m", Op: OpRange},
		{Metric: "m", Op: OpAvg},
		{Metric: "m", Op: OpTopK, K: 3, By: "max"},
		{Metric: "m", Op: OpTopK, K: 2, By: "rate"},
		{Metric: "m", Op: OpCount, From: 1e18, To: 2e18},
	}
	for _, shards := range []int{1, 2, 4, 7} {
		parted := make([]*Store, shards)
		for i := range parted {
			parted[i] = New()
		}
		for i, name := range targets {
			fill(parted[i%shards], name, "m", int64(20+i), BlockPoints+37*i)
		}
		for _, q := range ops {
			q.Targets = targets
			want, err := one.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			var parts []TargetResult
			for i, name := range targets {
				tr, err := parted[i%shards].QueryTarget(q, name)
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, tr)
			}
			if got := Assemble(q, parts); !reflect.DeepEqual(want, got) {
				t.Fatalf("%d shards, op %s/%s: split result differs", shards, q.Op, q.By)
			}
		}
	}
}

// TestTopKOrdering pins the ranking: descending by the ranking value,
// target name ascending on ties, truncated to K.
func TestTopKOrdering(t *testing.T) {
	st := New()
	st.Append("b", "m", 1e18, 10)
	st.Append("a", "m", 1e18, 10)
	st.Append("c", "m", 1e18, 30)
	st.Append("d", "m", 1e18, 5)
	res, err := st.Query(Query{Metric: "m", Op: OpTopK, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, tr := range res.Targets {
		order = append(order, tr.Target)
	}
	if !reflect.DeepEqual(order, []string{"c", "a", "b"}) {
		t.Fatalf("topk order = %v", order)
	}
}

// TestCompressionRatio demands the sealed representation beat the raw
// CSV the pre-store pipeline wrote by at least 5x on realistic series —
// the acceptance floor for the long-horizon store.
func TestCompressionRatio(t *testing.T) {
	st := New()
	pts := fill(st, "fixw", "routes", 42, 40*BlockPoints)
	var csv strings.Builder
	for _, pt := range pts {
		if pt.Gap {
			fmt.Fprintf(&csv, "%s,\n", time.Unix(0, pt.T).UTC().Format(time.RFC3339))
			continue
		}
		fmt.Fprintf(&csv, "%s,%g\n", time.Unix(0, pt.T).UTC().Format(time.RFC3339), pt.V)
	}
	sr := st.lookup("fixw", "routes")
	compressed := 0
	for _, blk := range sr.blocks {
		compressed += len(blk)
	}
	compressed += 16 * len(sr.head) // generous raw bound for the unsealed tail
	ratio := float64(csv.Len()) / float64(compressed)
	if ratio < 5 {
		t.Fatalf("compression ratio %.2fx < 5x (csv %d bytes, store %d bytes)", ratio, csv.Len(), compressed)
	}
	t.Logf("compression ratio %.1fx (csv %d bytes, store %d bytes)", ratio, csv.Len(), compressed)
}
