package tsdb

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildMirrored fills a store attached to dir and returns the appended
// points' count and the store.
func buildMirrored(t *testing.T, dir string, n int) *Store {
	t.Helper()
	st := New()
	if err := st.AttachDir(dir, false); err != nil {
		t.Fatal(err)
	}
	fill(st, "fixw", "routes", 8, n)
	fill(st, "ucsb-r1", "routes", 9, n/2)
	if err := st.CloseDir(); err != nil {
		t.Fatal(err)
	}
	if err := st.PersistErr(); err != nil {
		t.Fatal(err)
	}
	return st
}

// rebuilt replays the same appends into a fresh store — the stand-in
// for "rebuilt from checkpoint + WAL replay" that archive recovery
// performs before attaching the mirror.
func rebuilt(n int) *Store {
	st := New()
	fill(st, "fixw", "routes", 8, n)
	fill(st, "ucsb-r1", "routes", 9, n/2)
	return st
}

func queryAll(t *testing.T, st *Store) Result {
	t.Helper()
	res, err := st.Query(Query{Metric: "routes", Op: OpRange})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOpenColdMatchesSealedHistory(t *testing.T) {
	dir := t.TempDir()
	const n = 3*BlockPoints + 50
	st := buildMirrored(t, dir, n)

	cold, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The cold store holds sealed blocks only; compare against the live
	// store's sealed prefix.
	live := st.lookup("fixw", "routes")
	var sealed []Point
	for _, blk := range live.blocks {
		pts, err := DecodeBlock(blk)
		if err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, pts...)
	}
	got, err := cold.Materialize("fixw", "routes")
	if err != nil {
		t.Fatal(err)
	}
	if !pointsEqual(sealed, got) {
		t.Fatalf("cold store has %d points, sealed history has %d", len(got), len(sealed))
	}
}

// TestAttachDirRepairsTruncation truncates the mirror segment at every
// offset and proves AttachDir repairs the tail, reconciles the missing
// blocks from memory, and leaves queries byte-identical — PR 2's
// truncate-everywhere discipline applied to the block mirror.
func TestAttachDirRepairsTruncation(t *testing.T) {
	srcDir := t.TempDir()
	const n = 2*BlockPoints + 10
	orig := buildMirrored(t, srcDir, n)
	want := queryAll(t, orig)

	segs, err := listSegments(srcDir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	// Every offset would be ~5k attach cycles; step 7 covers every byte
	// position class (frame headers, payload, magic) at 1/7 the cost.
	for cut := 0; cut < len(data); cut += 7 {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st := rebuilt(n)
		if err := st.AttachDir(dir, false); err != nil {
			t.Fatalf("cut %d: attach: %v", cut, err)
		}
		if got := queryAll(t, st); !reflect.DeepEqual(want, got) {
			t.Fatalf("cut %d: query differs after repair", cut)
		}
		if err := st.CloseDir(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		// The healed mirror must itself be fully readable again.
		cold, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if cold.Len("fixw", "routes") == 0 && cut > len(segMagic) {
			// Fine when the cut killed the magic: AttachDir removed the
			// segment and rewrote sealed blocks into a fresh one — which
			// the Len check above would then see. Reaching here means the
			// reconcile failed to re-append anything.
			t.Fatalf("cut %d: healed mirror is empty", cut)
		}
	}
}

// TestAttachDirRepairsBitFlips flips bytes throughout the segment and
// proves the CRC framing catches them and the reconcile restores the
// lost frames.
func TestAttachDirRepairsBitFlips(t *testing.T) {
	srcDir := t.TempDir()
	const n = 2*BlockPoints + 10
	orig := buildMirrored(t, srcDir, n)
	want := queryAll(t, orig)

	segs, _ := listSegments(srcDir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(data); pos += 11 {
		dir := t.TempDir()
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x5a
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st := rebuilt(n)
		if err := st.AttachDir(dir, false); err != nil {
			t.Fatalf("flip %d: attach: %v", pos, err)
		}
		if got := queryAll(t, st); !reflect.DeepEqual(want, got) {
			t.Fatalf("flip %d: query differs after repair", pos)
		}
		if err := st.CloseDir(); err != nil {
			t.Fatalf("flip %d: close: %v", pos, err)
		}
	}
}

// TestAttachDirDropsSegmentsAfterTear: segments after a repaired tail
// are untrusted and removed, then reconciled back from memory.
func TestAttachDirDropsSegmentsAfterTear(t *testing.T) {
	dir := t.TempDir()
	const n = 2*BlockPoints + 10
	_ = buildMirrored(t, dir, n)

	// Fabricate a rotation: tear the first segment and add a later one.
	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], int64(len(data)-3)); err != nil {
		t.Fatal(err)
	}
	later := segmentPath(dir, segmentSeq(segs[0])+1)
	if err := os.WriteFile(later, []byte(segMagic+"garbage-after-rotation"), 0o644); err != nil {
		t.Fatal(err)
	}

	st := rebuilt(n)
	if err := st.AttachDir(dir, false); err != nil {
		t.Fatal(err)
	}
	if err := st.PersistErr(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(later); !os.IsNotExist(err) {
		t.Fatalf("post-tear segment survived: %v", err)
	}
	if err := st.CloseDir(); err != nil {
		t.Fatal(err)
	}
	cold, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Len("fixw", "routes") != 2*BlockPoints {
		t.Fatalf("healed mirror holds %d sealed points, want %d", cold.Len("fixw", "routes"), 2*BlockPoints)
	}
}

// TestMirrorAppendsAcrossReattach: blocks sealed while attached and
// blocks sealed before attach both end up mirrored exactly once.
func TestMirrorAppendsAcrossReattach(t *testing.T) {
	dir := t.TempDir()
	st := New()
	fill(st, "fixw", "routes", 8, BlockPoints) // sealed before attach
	if err := st.AttachDir(dir, false); err != nil {
		t.Fatal(err)
	}
	fill(st, "fixw", "sessions", 9, BlockPoints) // sealed while attached
	if err := st.CloseDir(); err != nil {
		t.Fatal(err)
	}
	// Re-attach: nothing is missing, so nothing is re-appended.
	if err := st.AttachDir(dir, false); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseDir(); err != nil {
		t.Fatal(err)
	}
	cold, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Len("fixw", "routes") != BlockPoints || cold.Len("fixw", "sessions") != BlockPoints {
		t.Fatalf("mirror lens = %d, %d", cold.Len("fixw", "routes"), cold.Len("fixw", "sessions"))
	}
}
