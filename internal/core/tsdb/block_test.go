package tsdb

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// genPoints produces a randomized series shaped like the monitor's
// metrics: a mostly regular cycle cadence with occasional irregular
// jumps, counter-like growth, counter resets, constant runs, large
// magnitudes and gap markers.
func genPoints(r *rand.Rand, n int) []Point {
	t := time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	v := float64(r.Intn(2000))
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		if r.Intn(10) == 0 {
			t += int64(1+r.Intn(7200)) * 1e9 // irregular jump
		} else {
			t += 1800 * 1e9 // the paper's 30-minute cadence
		}
		if r.Intn(12) == 0 {
			pts = append(pts, Point{T: t, Gap: true})
			continue
		}
		switch r.Intn(8) {
		case 0:
			v = 0 // counter reset
		case 1:
			v += float64(r.Intn(500)) // counter burst
		case 2:
			v = float64(r.Intn(10)) * 1e6 // magnitude change
		case 3:
			// constant run: keep v
		default:
			v += float64(r.Intn(7)) - 3 // small drift
			if v < 0 {
				v = 0
			}
		}
		pts = append(pts, Point{T: t, V: v})
	}
	return pts
}

func pointsEqual(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].T != b[i].T || a[i].Gap != b[i].Gap {
			return false
		}
		// Bit-exact value comparison: losslessness is the contract.
		if math.Float64bits(a[i].V) != math.Float64bits(b[i].V) {
			return false
		}
	}
	return true
}

// TestBlockRoundTripProperty encodes and decodes randomized series
// across many seeds and sizes and demands bit-exact reconstruction plus
// a header that agrees with the points.
func TestBlockRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(2*BlockPoints)
		pts := genPoints(r, n)
		blk := EncodeBlock(pts)
		got, err := DecodeBlock(blk)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !pointsEqual(pts, got) {
			t.Fatalf("seed %d: round trip mismatch (%d points)", seed, n)
		}
		info, err := DecodeBlockInfo(blk)
		if err != nil {
			t.Fatalf("seed %d: info: %v", seed, err)
		}
		checkInfo(t, seed, pts, info)
	}
}

// checkInfo recomputes the header fields from the points.
func checkInfo(t *testing.T, seed int64, pts []Point, info BlockInfo) {
	t.Helper()
	if info.Count != len(pts) {
		t.Fatalf("seed %d: count %d != %d", seed, info.Count, len(pts))
	}
	if info.FirstT != pts[0].T || info.LastT != pts[len(pts)-1].T {
		t.Fatalf("seed %d: time bounds wrong", seed)
	}
	values := 0
	var min, max, sum, first, last float64
	var firstVT, lastVT int64
	for _, pt := range pts {
		if pt.Gap {
			continue
		}
		if values == 0 {
			min, max, first, firstVT = pt.V, pt.V, pt.V, pt.T
		} else {
			if pt.V < min {
				min = pt.V
			}
			if pt.V > max {
				max = pt.V
			}
		}
		values++
		sum += pt.V
		last, lastVT = pt.V, pt.T
	}
	if info.ValueCount != values {
		t.Fatalf("seed %d: value count %d != %d", seed, info.ValueCount, values)
	}
	if values == 0 {
		return
	}
	if info.Min != min || info.Max != max || info.Sum != sum {
		t.Fatalf("seed %d: aggregates wrong: %+v", seed, info)
	}
	if info.FirstV != first || info.LastV != last || info.FirstVT != firstVT || info.LastVT != lastVT {
		t.Fatalf("seed %d: endpoints wrong: %+v", seed, info)
	}
}

// TestBlockEdgeCases pins the shapes the property generator can miss.
func TestBlockEdgeCases(t *testing.T) {
	cases := map[string][]Point{
		"single value":    {{T: 1e18, V: 42}},
		"single gap":      {{T: 1e18, Gap: true}},
		"all gaps":        {{T: 1e18, Gap: true}, {T: 1e18 + 1800e9, Gap: true}, {T: 1e18 + 3600e9, Gap: true}},
		"same timestamp":  {{T: 1e18, V: 1}, {T: 1e18, V: 2}},
		"zero values":     {{T: 1e18, V: 0}, {T: 1e18 + 1, V: 0}, {T: 1e18 + 2, V: 0}},
		"negative values": {{T: 1e18, V: -12.5}, {T: 1e18 + 1800e9, V: -0.0001}},
		"tiny deltas":     {{T: 1, V: 1}, {T: 2, V: 1.0000000001}, {T: 3, V: 1}},
		"full block":      genPoints(rand.New(rand.NewSource(99)), BlockPoints),
	}
	for name, pts := range cases {
		blk := EncodeBlock(pts)
		got, err := DecodeBlock(blk)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !pointsEqual(pts, got) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

// TestBlockDecodeNeverPanics exhaustively corrupts an encoded block —
// every single-byte flip and every truncation length — and requires the
// decoder to fail cleanly or return consistent data, never panic. The
// frame CRC normally screens corruption out, but the decoder is the
// last line of defense and must hold on its own.
func TestBlockDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	blk := EncodeBlock(genPoints(r, BlockPoints))
	for i := range blk {
		mut := append([]byte(nil), blk...)
		mut[i] ^= 0xff
		if pts, err := DecodeBlock(mut); err == nil {
			if info, ierr := DecodeBlockInfo(mut); ierr == nil && len(pts) != info.Count {
				t.Fatalf("flip %d: decoded %d points, header says %d", i, len(pts), info.Count)
			}
		}
	}
	for l := 0; l < len(blk); l++ {
		_, _ = DecodeBlock(blk[:l])
		_, _ = DecodeBlockInfo(blk[:l])
	}
}

// FuzzBlockDecode fuzzes the block decoder. The corpus is seeded with
// real sealed blocks: a store fed the same cycle-cadence counter shapes
// a WAL replay produces (values, bursts, resets, gap markers), plus a
// few deliberately broken variants.
func FuzzBlockDecode(f *testing.F) {
	st := New()
	r := rand.New(rand.NewSource(2001))
	for _, target := range []string{"fixw", "ucsb-r1"} {
		for _, pt := range genPoints(r, 3*BlockPoints) {
			if pt.Gap {
				st.AppendGap(target, "routes", pt.T)
			} else {
				st.Append(target, "routes", pt.T, pt.V)
			}
		}
		sr := st.lookup(target, "routes")
		for _, blk := range sr.blocks {
			f.Add(append([]byte(nil), blk...))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{blockVersion})
	short := EncodeBlock([]Point{{T: 5, V: 5}})
	f.Add(short[:len(short)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		info, ierr := DecodeBlockInfo(data)
		pts, derr := DecodeBlock(data)
		if (ierr == nil) != (derr == nil) && derr == nil {
			t.Fatalf("block decoded but header did not: %v", ierr)
		}
		if derr == nil && len(pts) != info.Count {
			t.Fatalf("decoded %d points, header says %d", len(pts), info.Count)
		}
	})
}
