// Query engine: range and aggregate reads over sealed blocks + head.
//
// Execution is split in two deterministic halves so the sharded fleet
// can reuse it: QueryTarget answers for one target against one store
// (each shard runs it over the targets it owns), and Assemble merges
// per-target results into the final answer — sorted by target name,
// top-k applied last — so the bytes are identical whether one store or
// sixteen shards produced the parts. That is the same fan-in discipline
// as every other fleet view.
//
// The sparse index does the skipping: blocks disjoint from [From, To]
// are never decoded, and fully-contained blocks answer aggregates from
// their headers alone.
package tsdb

import (
	"math"
	"sort"
)

// Op selects what a query computes.
type Op string

// Query operations. Aggregates cover value points only; gaps are
// reported in range output and counted in tier buckets but never enter
// an aggregate.
const (
	// OpRange returns the points (values and gap markers) in [From, To].
	OpRange Op = "range"
	OpMin   Op = "min"
	OpMax   Op = "max"
	OpAvg   Op = "avg"
	OpSum   Op = "sum"
	OpCount Op = "count"
	// OpRate is the per-second slope between the first and last value
	// point in range: (last-first)/Δt.
	OpRate Op = "rate"
	// OpTopK ranks targets by the aggregate named in By (default avg)
	// and keeps the K highest.
	OpTopK Op = "topk"
)

// Query describes one read.
type Query struct {
	// Targets to answer for; empty means every target the store (or
	// fleet) knows, in sorted order.
	Targets []string
	Metric  string
	// From and To bound the range in unixnano, inclusive. Zero To (and
	// zero From) mean unbounded — all stored timestamps are positive.
	From int64
	To   int64
	Op   Op
	// K bounds OpTopK output; <= 0 keeps every ranked target.
	K int
	// By names the ranking aggregate for OpTopK: min, max, avg, sum,
	// count, rate or last. Empty means avg.
	By string
	// Tier selects range resolution: 0 raw, Tier10 or Tier100 for one
	// averaged point per bucket. Aggregates always read raw data.
	Tier int
}

// Agg is the aggregate summary of the value points a query matched.
type Agg struct {
	Count  int     `json:"count"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Sum    float64 `json:"sum"`
	Avg    float64 `json:"avg"`
	First  float64 `json:"first"`
	Last   float64 `json:"last"`
	FirstT int64   `json:"first_t"`
	LastT  int64   `json:"last_t"`
	// Rate is the per-second slope first→last, 0 with fewer than two
	// points.
	Rate float64 `json:"rate"`
}

// TargetResult is one target's share of a query answer. Points is set
// for OpRange, Agg for aggregate ops (nil when no value point matched).
type TargetResult struct {
	Target string  `json:"target"`
	Points []Point `json:"points,omitempty"`
	Agg    *Agg    `json:"agg,omitempty"`
}

// Result is an assembled query answer.
type Result struct {
	Metric  string         `json:"metric"`
	Op      Op             `json:"op"`
	Targets []TargetResult `json:"targets"`
}

func (q Query) bounds() (lo, hi int64) {
	lo, hi = q.From, q.To
	if hi == 0 {
		hi = math.MaxInt64
	}
	return lo, hi
}

// QueryTarget answers q for a single target from this store alone —
// the per-shard execution half. Unseen targets produce an empty result
// row, identically everywhere.
func (st *Store) QueryTarget(q Query, target string) (TargetResult, error) {
	res := TargetResult{Target: target}
	sr := st.lookup(target, q.Metric)
	if sr == nil {
		return res, nil
	}
	lo, hi := q.bounds()
	if q.Op == OpRange {
		switch q.Tier {
		case Tier10:
			res.Points = tierRange(sr.t10, lo, hi)
		case Tier100:
			res.Points = tierRange(sr.t100, lo, hi)
		default:
			pts, err := sr.rawRange(lo, hi)
			if err != nil {
				return res, err
			}
			res.Points = pts
		}
		return res, nil
	}
	agg, err := sr.aggregate(lo, hi)
	if err != nil {
		return res, err
	}
	res.Agg = agg
	return res, nil
}

// tierRange emits one averaged point per bucket whose first timestamp
// falls in range; buckets holding only gaps become gap points.
func tierRange(buckets []Bucket, lo, hi int64) []Point {
	var out []Point
	for i := range buckets {
		b := &buckets[i]
		if b.FirstT < lo || b.FirstT > hi {
			continue
		}
		if b.Count == 0 {
			out = append(out, Point{T: b.FirstT, Gap: true})
			continue
		}
		out = append(out, Point{T: b.FirstT, V: b.Sum / float64(b.Count)})
	}
	return out
}

func (sr *series) rawRange(lo, hi int64) ([]Point, error) {
	var out []Point
	for i, blk := range sr.blocks {
		info := sr.infos[i]
		if info.LastT < lo || info.FirstT > hi {
			continue
		}
		pts, err := DecodeBlock(blk)
		if err != nil {
			return nil, err
		}
		if info.FirstT >= lo && info.LastT <= hi {
			out = append(out, pts...)
			continue
		}
		for _, pt := range pts {
			if pt.T >= lo && pt.T <= hi {
				out = append(out, pt)
			}
		}
	}
	for _, pt := range sr.head {
		if pt.T >= lo && pt.T <= hi {
			out = append(out, pt)
		}
	}
	return out, nil
}

// aggregate folds the value points in [lo, hi], reading fully-contained
// blocks from their headers without decoding.
func (sr *series) aggregate(lo, hi int64) (*Agg, error) {
	var a Agg
	fold := func(t int64, v float64) {
		if a.Count == 0 {
			a.Min, a.Max, a.First, a.FirstT = v, v, v, t
		} else {
			if v < a.Min {
				a.Min = v
			}
			if v > a.Max {
				a.Max = v
			}
		}
		a.Count++
		a.Sum += v
		a.Last, a.LastT = v, t
	}
	for i, blk := range sr.blocks {
		info := sr.infos[i]
		if info.LastT < lo || info.FirstT > hi {
			continue
		}
		if info.FirstT >= lo && info.LastT <= hi {
			if info.ValueCount == 0 {
				continue
			}
			if a.Count == 0 {
				a.Min, a.Max = info.Min, info.Max
				a.First, a.FirstT = info.FirstV, info.FirstVT
			} else {
				if info.Min < a.Min {
					a.Min = info.Min
				}
				if info.Max > a.Max {
					a.Max = info.Max
				}
			}
			a.Count += info.ValueCount
			a.Sum += info.Sum
			a.Last, a.LastT = info.LastV, info.LastVT
			continue
		}
		pts, err := DecodeBlock(blk)
		if err != nil {
			return nil, err
		}
		for _, pt := range pts {
			if !pt.Gap && pt.T >= lo && pt.T <= hi {
				fold(pt.T, pt.V)
			}
		}
	}
	for _, pt := range sr.head {
		if !pt.Gap && pt.T >= lo && pt.T <= hi {
			fold(pt.T, pt.V)
		}
	}
	if a.Count == 0 {
		return nil, nil
	}
	a.Avg = a.Sum / float64(a.Count)
	if a.Count >= 2 && a.LastT > a.FirstT {
		a.Rate = (a.Last - a.First) / (float64(a.LastT-a.FirstT) / 1e9)
	}
	return &a, nil
}

// Query answers q against this store alone: every requested target (or
// all known ones) through QueryTarget, then Assemble.
func (st *Store) Query(q Query) (Result, error) {
	targets := q.Targets
	if len(targets) == 0 {
		targets = st.Targets()
	}
	parts := make([]TargetResult, 0, len(targets))
	for _, t := range targets {
		tr, err := st.QueryTarget(q, t)
		if err != nil {
			return Result{}, err
		}
		parts = append(parts, tr)
	}
	return Assemble(q, parts), nil
}

// aggValue extracts the OpTopK ranking value.
func aggValue(a *Agg, by string) float64 {
	switch by {
	case "min":
		return a.Min
	case "max":
		return a.Max
	case "sum":
		return a.Sum
	case "count":
		return float64(a.Count)
	case "rate":
		return a.Rate
	case "last":
		return a.Last
	default: // avg
		return a.Avg
	}
}

// Assemble merges per-target results into the final answer: rows sorted
// by target name, then top-k ranking when asked. Pure and
// deterministic — the shard supervisor calls it over rows gathered from
// many stores and gets the same bytes a single store would produce.
func Assemble(q Query, parts []TargetResult) Result {
	rows := append([]TargetResult(nil), parts...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Target < rows[j].Target })
	if q.Op == OpTopK {
		ranked := rows[:0]
		for _, r := range rows {
			if r.Agg != nil {
				ranked = append(ranked, r)
			}
		}
		rows = ranked
		sort.SliceStable(rows, func(i, j int) bool {
			vi, vj := aggValue(rows[i].Agg, q.By), aggValue(rows[j].Agg, q.By)
			if vi != vj {
				return vi > vj
			}
			return rows[i].Target < rows[j].Target
		})
		if q.K > 0 && len(rows) > q.K {
			rows = rows[:q.K]
		}
	}
	return Result{Metric: q.Metric, Op: q.Op, Targets: rows}
}
