// Package tsdb is Mantra's long-horizon series store: the compressed
// time-series layer behind the hot in-memory rings of internal/core/
// process. Every ingested point is mirrored here — delta-of-delta
// timestamps and XOR-compressed values (the Gorilla scheme) packed into
// fixed-size sealed blocks whose byte-aligned headers double as a
// sparse index — alongside incrementally maintained downsampling tiers
// (raw → per-10-point → per-100-point). Sealed blocks optionally
// persist under the archive's DataDir with the same CRC-framed writer
// discipline the WAL uses, and a small query engine (range, aggregates,
// rate, top-k) answers over blocks + head without materializing history
// it can skip.
//
// Concurrency contract: like process.Processor, a Store is owned by the
// driver goroutine; HTTP readers rely on the same between-cycle
// quiescence the /series endpoint already assumes. Compression is
// lossless — timestamps round-trip as int64 unixnano and values as raw
// float64 bits — which is what lets the streamed figure pipeline stay
// byte-identical to the post-hoc one.
package tsdb

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	b []byte
	// free is the number of unused low bits in the last byte (0 when
	// the stream is byte-aligned).
	free uint
}

func (w *bitWriter) writeBit(bit uint64) {
	if w.free == 0 {
		w.b = append(w.b, 0)
		w.free = 8
	}
	w.free--
	if bit != 0 {
		w.b[len(w.b)-1] |= 1 << w.free
	}
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		n--
		w.writeBit((v >> n) & 1)
	}
}

func (w *bitWriter) bytes() []byte { return w.b }

// bitReader consumes bits MSB-first, latching the first out-of-bounds
// read as a sticky error — the same discipline as logger's byteReader.
type bitReader struct {
	b    []byte
	off  uint // bit offset from the start
	err  error
	fail error // sentinel to latch
}

func newBitReader(b []byte, fail error) *bitReader {
	return &bitReader{b: b, fail: fail}
}

func (r *bitReader) readBit() uint64 {
	if r.err != nil {
		return 0
	}
	if int(r.off/8) >= len(r.b) {
		r.err = r.fail
		return 0
	}
	bit := (r.b[r.off/8] >> (7 - r.off%8)) & 1
	r.off++
	return uint64(bit)
}

func (r *bitReader) readBits(n uint) uint64 {
	var v uint64
	for i := uint(0); i < n; i++ {
		v = v<<1 | r.readBit()
	}
	return v
}
