// Block codec: Gorilla-style compression of one run of points.
//
// A sealed block is a byte-aligned header followed by a bitstream. The
// header carries everything range- and aggregate-queries need to decide
// whether the bitstream must be decoded at all — first/last timestamp
// for skipping, count/min/max/sum and first/last value for answering
// fully-contained aggregates — so the header set over all blocks is the
// store's sparse index, loadable without touching point data.
//
// The bitstream encodes, per point: a gap flag, a delta-of-delta
// timestamp ('0' = repeat delta, '10'+32-bit zigzag, '11'+64-bit raw),
// and for value points an XOR-compressed float64 ('0' = repeat value,
// '10' = reuse the previous leading/trailing window, '11' = new window:
// 6 bits leading zeros, 6 bits significant-bit count minus one, then
// the significant bits). Gap points carry a timestamp but no value and
// leave the value predictor untouched. Everything is lossless.
package tsdb

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"
)

// ErrBadBlock reports a block that cannot be decoded: truncated,
// corrupted, or from an unknown version.
var ErrBadBlock = errors.New("tsdb: bad block")

const blockVersion = 1

// BlockPoints is the seal threshold: a series' head is encoded into a
// sealed block every BlockPoints points (values and gaps combined).
const BlockPoints = 256

// Point is one stored sample: a unixnano timestamp and either a value
// or a gap marker (a cycle in which collection failed; V is zero and
// meaningless when Gap is set).
type Point struct {
	T   int64
	V   float64
	Gap bool
}

// BlockInfo is a decoded block header — one sparse-index entry. The
// aggregate fields cover value points only; Count includes gaps.
type BlockInfo struct {
	Count      int
	ValueCount int
	FirstT     int64 // first point's timestamp (gaps included)
	LastT      int64 // last point's timestamp (gaps included)
	FirstVT    int64 // first value point's timestamp
	LastVT     int64 // last value point's timestamp
	FirstV     float64
	LastV      float64
	Min        float64
	Max        float64
	Sum        float64
}

// EncodeBlock seals pts into a block. Points are stored in slice order;
// appends are time-monotonic in Mantra, which is what makes the
// header's FirstT/LastT usable for range skipping.
//
//mantra:codec pair=tsdbblock role=encode type=BlockInfo magic=blockVersion shape=7fceb720dd01397c
func EncodeBlock(pts []Point) []byte {
	var w bitWriter
	var (
		prevT, prevDelta int64
		prevV            uint64
		prevLead         = ^uint(0) // no window yet
		prevTrail        uint
		haveV            bool
	)
	info := BlockInfo{Count: len(pts)}
	for i, pt := range pts {
		if pt.Gap {
			w.writeBit(1)
		} else {
			w.writeBit(0)
		}
		// Timestamp.
		if i == 0 {
			info.FirstT = pt.T
			w.writeBits(uint64(pt.T), 64)
			prevT = pt.T
		} else {
			delta := pt.T - prevT
			dod := delta - prevDelta
			switch {
			case dod == 0:
				w.writeBit(0)
			case dod >= math.MinInt32 && dod <= math.MaxInt32:
				w.writeBits(0b10, 2)
				w.writeBits(uint64(uint32((dod<<1)^(dod>>63))), 32)
			default:
				w.writeBits(0b11, 2)
				w.writeBits(uint64(dod), 64)
			}
			prevDelta = delta
			prevT = pt.T
		}
		info.LastT = pt.T
		if pt.Gap {
			continue
		}
		// Value.
		vb := math.Float64bits(pt.V)
		if !haveV {
			w.writeBits(vb, 64)
			haveV = true
			info.Min, info.Max, info.FirstV = pt.V, pt.V, pt.V
			info.FirstVT = pt.T
		} else {
			xor := vb ^ prevV
			if xor == 0 {
				w.writeBit(0)
			} else {
				w.writeBit(1)
				lead := uint(bits.LeadingZeros64(xor))
				trail := uint(bits.TrailingZeros64(xor))
				if prevLead != ^uint(0) && lead >= prevLead && trail >= prevTrail {
					w.writeBit(0)
					w.writeBits(xor>>prevTrail, 64-prevLead-prevTrail)
				} else {
					w.writeBit(1)
					sig := 64 - lead - trail
					w.writeBits(uint64(lead), 6)
					w.writeBits(uint64(sig-1), 6)
					w.writeBits(xor>>trail, sig)
					prevLead, prevTrail = lead, trail
				}
			}
			if pt.V < info.Min {
				info.Min = pt.V
			}
			if pt.V > info.Max {
				info.Max = pt.V
			}
		}
		prevV = vb
		info.ValueCount++
		info.Sum += pt.V
		info.LastV = pt.V
		info.LastVT = pt.T
	}
	stream := w.bytes()
	out := make([]byte, 0, 64+len(stream))
	out = append(out, blockVersion)
	out = binary.AppendUvarint(out, uint64(info.Count))
	out = binary.AppendUvarint(out, uint64(info.ValueCount))
	out = appendU64(out, uint64(info.FirstT))
	out = appendU64(out, uint64(info.LastT))
	out = appendU64(out, uint64(info.FirstVT))
	out = appendU64(out, uint64(info.LastVT))
	out = appendU64(out, math.Float64bits(info.FirstV))
	out = appendU64(out, math.Float64bits(info.LastV))
	out = appendU64(out, math.Float64bits(info.Min))
	out = appendU64(out, math.Float64bits(info.Max))
	out = appendU64(out, math.Float64bits(info.Sum))
	out = binary.AppendUvarint(out, uint64(len(stream)))
	out = append(out, stream...)
	return out
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// headerReader decodes the byte-aligned block header with a latched
// error, mirroring logger's byteReader.
type headerReader struct {
	b   []byte
	off int
	err error
}

func (r *headerReader) fail() {
	if r.err == nil {
		r.err = ErrBadBlock
	}
}

func (r *headerReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *headerReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *headerReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// decodeHeader reads the header, returning the info and the bitstream.
//
//mantra:codec pair=tsdbblock role=decode type=BlockInfo magic=blockVersion
func decodeHeader(b []byte) (BlockInfo, []byte, error) {
	r := &headerReader{b: b}
	if v := r.byte(); r.err == nil && v != blockVersion {
		return BlockInfo{}, nil, ErrBadBlock
	}
	var info BlockInfo
	count := r.uvarint()
	values := r.uvarint()
	info.Count = int(count)
	info.ValueCount = int(values)
	info.FirstT = int64(r.u64())
	info.LastT = int64(r.u64())
	info.FirstVT = int64(r.u64())
	info.LastVT = int64(r.u64())
	info.FirstV = math.Float64frombits(r.u64())
	info.LastV = math.Float64frombits(r.u64())
	info.Min = math.Float64frombits(r.u64())
	info.Max = math.Float64frombits(r.u64())
	info.Sum = math.Float64frombits(r.u64())
	streamLen := r.uvarint()
	if r.err != nil {
		return BlockInfo{}, nil, r.err
	}
	// Sanity bounds: a count or length beyond what the buffer could
	// possibly hold is corruption, not a big block.
	if count > uint64(len(b))*8 || values > count || streamLen > uint64(len(b)) {
		return BlockInfo{}, nil, ErrBadBlock
	}
	if r.off+int(streamLen) != len(b) {
		return BlockInfo{}, nil, ErrBadBlock
	}
	return info, b[r.off:], nil
}

// DecodeBlockInfo decodes only the header — the sparse-index read path.
func DecodeBlockInfo(b []byte) (BlockInfo, error) {
	info, _, err := decodeHeader(b)
	return info, err
}

// DecodeBlock decodes a sealed block back into its points.
func DecodeBlock(b []byte) ([]Point, error) {
	info, stream, err := decodeHeader(b)
	if err != nil {
		return nil, err
	}
	r := newBitReader(stream, ErrBadBlock)
	pts := make([]Point, 0, info.Count)
	var (
		prevT, prevDelta int64
		prevV            uint64
		prevLead         = ^uint(0)
		prevTrail        uint
		haveV            bool
		values           int
	)
	for i := 0; i < info.Count; i++ {
		var pt Point
		pt.Gap = r.readBit() == 1
		if i == 0 {
			pt.T = int64(r.readBits(64))
			prevT = pt.T
		} else {
			var dod int64
			if r.readBit() == 1 {
				if r.readBit() == 0 {
					zz := r.readBits(32)
					dod = int64(zz>>1) ^ -int64(zz&1)
				} else {
					dod = int64(r.readBits(64))
				}
			}
			prevDelta += dod
			prevT += prevDelta
			pt.T = prevT
		}
		if !pt.Gap {
			if !haveV {
				prevV = r.readBits(64)
				haveV = true
			} else if r.readBit() == 1 {
				var sig uint
				if r.readBit() == 0 {
					if prevLead == ^uint(0) {
						return nil, ErrBadBlock
					}
					sig = 64 - prevLead - prevTrail
				} else {
					lead := uint(r.readBits(6))
					sig = uint(r.readBits(6)) + 1
					if lead+sig > 64 {
						return nil, ErrBadBlock
					}
					prevLead, prevTrail = lead, 64-lead-sig
				}
				prevV ^= r.readBits(sig) << prevTrail
			}
			pt.V = math.Float64frombits(prevV)
			values++
		}
		if r.err != nil {
			return nil, r.err
		}
		pts = append(pts, pt)
	}
	if values != info.ValueCount {
		return nil, ErrBadBlock
	}
	return pts, nil
}
