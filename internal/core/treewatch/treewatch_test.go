package treewatch_test

import (
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/core/treewatch"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// liveFlow builds a network and returns a (source, group) with several
// receivers across domains.
func liveFlow(t *testing.T) (*netsim.Network, addr.IP, addr.IP) {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 6
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.Step()
	}
	for _, s := range wl.Sessions() {
		if s.Class != workload.ClassBroadcast || len(s.Members) < 5 {
			continue
		}
		for _, snd := range s.Senders() {
			return n, snd.Host, s.Group
		}
	}
	t.Skip("no broadcast flow at this seed")
	return nil, 0, 0
}

func TestObserveBuildsTree(t *testing.T) {
	n, src, grp := liveFlow(t)
	w := treewatch.New(n, src, grp)
	tree, changes, err := w.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if changes != nil {
		t.Error("first observation should have nil changes")
	}
	if tree.Root != n.Topo.EdgeRouterFor(src).Name {
		t.Errorf("root = %s", tree.Root)
	}
	if len(tree.Routers()) < 3 {
		t.Errorf("tree too small: %v", tree.Routers())
	}
	total := 0
	for _, hosts := range tree.Receivers {
		total += len(hosts)
	}
	if total == 0 {
		t.Fatal("no receivers placed")
	}
	out := tree.Render()
	if !strings.Contains(out, tree.Root) || !strings.Contains(out, "receivers)") {
		t.Errorf("render:\n%s", out)
	}
}

func TestObserveReportsChanges(t *testing.T) {
	n, src, grp := liveFlow(t)
	w := treewatch.New(n, src, grp)
	if _, _, err := w.Observe(); err != nil {
		t.Fatal(err)
	}
	// Let membership churn for a few cycles, then re-observe.
	var changes []treewatch.Change
	for i := 0; i < 12 && len(changes) == 0; i++ {
		n.Step()
		_, ch, err := w.Observe()
		if err != nil {
			t.Fatal(err)
		}
		changes = ch
	}
	if len(changes) == 0 {
		t.Skip("membership did not churn at this seed")
	}
	for _, c := range changes {
		switch c.Kind {
		case "router-added", "router-removed", "receiver-joined", "receiver-left":
		default:
			t.Errorf("unknown change kind %q", c.Kind)
		}
		if c.Detail == "" {
			t.Error("change without detail")
		}
	}
}

func TestObserveUnknownSource(t *testing.T) {
	n, _, grp := liveFlow(t)
	w := treewatch.New(n, addr.MustParse("1.2.3.4"), grp)
	if _, _, err := w.Observe(); err == nil {
		t.Error("unknown source accepted")
	}
}
