// Package treewatch implements mhealth-style distribution-tree monitoring
// (the paper cites mhealth as a real-time multicast tree visualization
// and monitoring front-end over mtrace): for one (source, group) it
// periodically traces the path from every known receiver back to the
// source, assembles the paths into the distribution tree, renders it, and
// reports structural changes between observations.
//
// Receiver identities come from RTCP-style membership (in the simulation,
// the session's member list stands in for the receiver reports mhealth
// listened to).
package treewatch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/addr"
	"repro/internal/netsim"
)

// Tree is one observation of a session's distribution tree.
type Tree struct {
	Source addr.IP
	Group  addr.IP
	// Root is the source's first-hop router name.
	Root string
	// Children maps a router to its downstream routers, sorted.
	Children map[string][]string
	// Receivers maps an edge router to the receiver hosts behind it.
	Receivers map[string][]addr.IP
	// Unreached lists receivers with no multicast path from the source.
	Unreached []addr.IP
}

// Routers returns every router in the tree, sorted.
func (t *Tree) Routers() []string {
	seen := map[string]bool{t.Root: true}
	for parent, kids := range t.Children {
		seen[parent] = true
		for _, k := range kids {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Change is one structural difference between consecutive observations.
type Change struct {
	Kind   string // "router-added" | "router-removed" | "receiver-joined" | "receiver-left"
	Detail string
}

// Watcher observes one (source, group) over time.
type Watcher struct {
	Net    *netsim.Network
	Source addr.IP
	Group  addr.IP

	prev *Tree
}

// New returns a watcher for the flow.
func New(n *netsim.Network, source, group addr.IP) *Watcher {
	return &Watcher{Net: n, Source: source, Group: group}
}

// receivers lists the session's current member hosts other than the
// source (the RTCP view).
func (w *Watcher) receivers() []addr.IP {
	var out []addr.IP
	for _, s := range w.Net.Workload.Sessions() {
		if s.Group != w.Group {
			continue
		}
		for _, m := range s.MemberList() {
			if m.Host != w.Source {
				out = append(out, m.Host)
			}
		}
	}
	return out
}

// Observe traces the tree once and reports changes since the previous
// observation (nil changes on the first call).
func (w *Watcher) Observe() (*Tree, []Change, error) {
	srcEdge := w.Net.Topo.EdgeRouterFor(w.Source)
	if srcEdge == nil {
		return nil, nil, fmt.Errorf("treewatch: no edge router for source %v", w.Source)
	}
	t := &Tree{
		Source:    w.Source,
		Group:     w.Group,
		Root:      srcEdge.Name,
		Children:  make(map[string][]string),
		Receivers: make(map[string][]addr.IP),
	}
	edges := make(map[string]map[string]bool)
	for _, rcv := range w.receivers() {
		hops, err := w.Net.Mtrace(w.Source, w.Group, rcv)
		if err != nil {
			t.Unreached = append(t.Unreached, rcv)
			continue
		}
		// hops run receiver-first; the tree hangs source-first.
		for i := len(hops) - 1; i > 0; i-- {
			parent, child := hops[i].Router, hops[i-1].Router
			if edges[parent] == nil {
				edges[parent] = make(map[string]bool)
			}
			edges[parent][child] = true
		}
		leaf := hops[0].Router
		t.Receivers[leaf] = append(t.Receivers[leaf], rcv)
	}
	for parent, kids := range edges {
		for k := range kids {
			t.Children[parent] = append(t.Children[parent], k)
		}
		sort.Strings(t.Children[parent])
	}
	for leaf := range t.Receivers {
		sort.Slice(t.Receivers[leaf], func(i, j int) bool {
			return t.Receivers[leaf][i] < t.Receivers[leaf][j]
		})
	}
	sort.Slice(t.Unreached, func(i, j int) bool { return t.Unreached[i] < t.Unreached[j] })

	changes := diff(w.prev, t)
	w.prev = t
	return t, changes, nil
}

// diff computes structural changes between two trees.
func diff(prev, cur *Tree) []Change {
	if prev == nil {
		return nil
	}
	var out []Change
	prevRouters := toSet(prev.Routers())
	curRouters := toSet(cur.Routers())
	for r := range curRouters {
		if !prevRouters[r] {
			out = append(out, Change{Kind: "router-added", Detail: r})
		}
	}
	for r := range prevRouters {
		if !curRouters[r] {
			out = append(out, Change{Kind: "router-removed", Detail: r})
		}
	}
	prevRcv := receiverSet(prev)
	curRcv := receiverSet(cur)
	for h := range curRcv {
		if !prevRcv[h] {
			out = append(out, Change{Kind: "receiver-joined", Detail: h})
		}
	}
	for h := range prevRcv {
		if !curRcv[h] {
			out = append(out, Change{Kind: "receiver-left", Detail: h})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

func toSet(items []string) map[string]bool {
	out := make(map[string]bool, len(items))
	for _, s := range items {
		out[s] = true
	}
	return out
}

func receiverSet(t *Tree) map[string]bool {
	out := make(map[string]bool)
	for _, hosts := range t.Receivers {
		for _, h := range hosts {
			out[h.String()] = true
		}
	}
	return out
}

// Render draws the tree with indentation, source at the top.
func (t *Tree) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tree for (%v, %v):\n", t.Source, t.Group)
	var walk func(node string, depth int, seen map[string]bool)
	walk = func(node string, depth int, seen map[string]bool) {
		if seen[node] {
			return
		}
		seen[node] = true
		fmt.Fprintf(&sb, "%s%s", strings.Repeat("  ", depth), node)
		if hosts := t.Receivers[node]; len(hosts) > 0 {
			fmt.Fprintf(&sb, "  (%d receivers)", len(hosts))
		}
		sb.WriteByte('\n')
		for _, k := range t.Children[node] {
			walk(k, depth+1, seen)
		}
	}
	walk(t.Root, 0, make(map[string]bool))
	if len(t.Unreached) > 0 {
		fmt.Fprintf(&sb, "unreached receivers: %d\n", len(t.Unreached))
	}
	return sb.String()
}
