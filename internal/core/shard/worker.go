// Shard workers: each one is a miniature monitor — its own resilient
// collector, delta logger, processor and cycle engine, plus an optional
// per-shard WAL store — driven over a request/response channel pair by
// the supervisor. The worker goroutine owns its core exclusively while
// a cycle is in flight; between cycles the supervisor may reach into an
// idle core directly (handoff imports, exports), with the next
// request/response pair providing the happens-before edge.
//
// WAL writes are group-committed: the in-memory logger is updated
// stage-by-stage during the cycle, but store frames are buffered and
// persisted only after the cycle completes and the worker passes its
// kill check. A worker killed mid-cycle therefore persists nothing for
// that cycle — the frame sequence on disk never contains a cycle the
// supervisor saw fail, which is what keeps cross-shard replay free of
// duplicate and out-of-order frames after a handoff.
package shard

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/engine"
	"repro/internal/core/logger"
	"repro/internal/core/process"
	"repro/internal/core/tables"
)

// KillMode is a scripted worker fault, set by the chaos suite between
// cycles and consumed at the worker's next request.
type KillMode int

const (
	killNone KillMode = iota
	// KillBeforeCycle crashes the worker as it picks up the request,
	// before any collection runs.
	KillBeforeCycle
	// KillMidCycle crashes the worker after the engine cycle ran but
	// before anything is persisted, checkpointed or acknowledged — the
	// torn-handoff case the WAL group-commit fencing exists for.
	KillMidCycle
	// Wedge leaves the goroutine alive but useless: it acknowledges
	// requests without collecting and never heartbeats, so only the
	// heartbeat staleness check can catch it.
	Wedge
)

type cycleReq struct {
	now     time.Time
	targets []collect.Target
}

type cycleResp struct {
	items  []*engine.Item
	wedged bool
	err    error
}

// checkpoint is a worker's per-target state export, captured after each
// completed (and persisted) cycle. Handoff resumes moved targets from
// here: anything the dead worker did after its last checkpoint was
// never persisted, so the checkpoint plus gap markers for the blind
// cycles is exactly the durable truth. asOf records, per target, the
// last cycle stamp the exported state accounts for — later recorded
// cycles are the target's blind window.
type checkpoint struct {
	asOf   map[string]time.Time
	proc   map[string]*process.TargetState
	logs   map[string]logger.TargetState
	stab   map[string]*process.StabilityState
	health map[string]collect.TargetHealth
	latest map[string]*tables.Snapshot
}

func newCheckpoint() *checkpoint {
	return &checkpoint{
		asOf:   make(map[string]time.Time),
		proc:   make(map[string]*process.TargetState),
		logs:   make(map[string]logger.TargetState),
		stab:   make(map[string]*process.StabilityState),
		health: make(map[string]collect.TargetHealth),
		latest: make(map[string]*tables.Snapshot),
	}
}

// merge splices one target's entries from another checkpoint in —
// used when a live import lands on a worker whose own checkpoint
// predates the new target.
func (ck *checkpoint) merge(name string, one *checkpoint) {
	ck.asOf[name] = one.asOf[name]
	if st, ok := one.proc[name]; ok {
		ck.proc[name] = st
	} else {
		delete(ck.proc, name)
	}
	if ts, ok := one.logs[name]; ok {
		ck.logs[name] = ts
	} else {
		delete(ck.logs, name)
	}
	if st, ok := one.stab[name]; ok {
		ck.stab[name] = st
	} else {
		delete(ck.stab, name)
	}
	if h, ok := one.health[name]; ok {
		ck.health[name] = h
	} else {
		delete(ck.health, name)
	}
	if sn, ok := one.latest[name]; ok {
		ck.latest[name] = sn
	} else {
		delete(ck.latest, name)
	}
}

type pendDelta struct {
	target      string
	rec         logger.CycleRecord
	fullEntries uint64
}

type pendGap struct {
	target string
	at     time.Time
	reason string
}

// shardCore is one worker's processing stack.
type shardCore struct {
	collector *collect.Collector
	log       *logger.Logger
	proc      *process.Processor
	eng       *engine.Engine
	store     *logger.Store
	commands  []string
	conc      int

	// Cycle-local WAL buffers, flushed by persist after the kill check.
	pendDeltas []pendDelta
	pendGaps   []pendGap
}

func newCore(cfg Config, dir string) (*shardCore, error) {
	c := &shardCore{
		collector: collect.NewCollector(cfg.Policy),
		log:       logger.New(),
		proc:      process.New(),
		commands:  cfg.Commands,
		conc:      cfg.Concurrency,
	}
	if cfg.MaxAnomalies > 0 {
		c.proc.MaxAnomalies = cfg.MaxAnomalies
	}
	if cfg.SeriesRetain > 0 {
		c.proc.SetSeriesRetain(cfg.SeriesRetain)
	}
	c.eng = engine.New(c.stages(), cfg.Clock)
	if dir != "" {
		st, err := logger.OpenStore(dir, logger.StoreOptions{SyncEveryAppend: cfg.SyncEveryAppend})
		if err != nil {
			return nil, err
		}
		c.store = st
	}
	return c, nil
}

// stages mirrors the Monitor's engine wiring, with one difference: the
// durable-archive appends go to the cycle-local buffers instead of
// straight to the store, so persistence can be fenced behind the kill
// check.
func (c *shardCore) stages() engine.Stages {
	return engine.Stages{
		Collect: func(it *engine.Item, now time.Time) {
			it.Res = c.collector.Collect(it.Target, c.commands, now)
		},
		Normalize: func(it *engine.Item, now time.Time) {
			sn, err := tables.BuildSnapshot(it.Res.Dumps)
			if err != nil {
				err = fmt.Errorf("collect %s: snapshot rejected: %w", it.Target.Name, err)
				c.collector.RecordFailure(it.Target.Name, now, err)
				it.Res.Status = collect.StatusDegraded
				it.Res.Err = err
				return
			}
			it.Snapshot = sn
		},
		Log: func(it *engine.Item, now time.Time) {
			if it.Snapshot == nil {
				reason := ""
				if it.Res.Err != nil {
					reason = it.Res.Err.Error()
				}
				c.log.MarkGap(it.Res.Target, now, reason)
				c.pendGaps = append(c.pendGaps, pendGap{target: it.Res.Target, at: now, reason: reason})
				return
			}
			rec := c.log.Append(it.Snapshot)
			c.pendDeltas = append(c.pendDeltas, pendDelta{
				target:      it.Snapshot.Target,
				rec:         rec,
				fullEntries: uint64(len(it.Snapshot.Pairs) + len(it.Snapshot.Routes)),
			})
		},
		Ingest: func(it *engine.Item, now time.Time) {
			if it.Snapshot == nil {
				c.proc.MarkGap(it.Res.Target, now)
				return
			}
			st := c.proc.Ingest(it.Snapshot)
			it.Stats = &st
		},
		Publish: func(*engine.Item, time.Time) {},
	}
}

// runCycle executes one engine cycle over the worker's assigned
// targets, in-memory only; WAL frames land in the pending buffers.
func (c *shardCore) runCycle(now time.Time, targets []collect.Target) []*engine.Item {
	c.pendDeltas = c.pendDeltas[:0]
	c.pendGaps = c.pendGaps[:0]
	items, _, _ := c.eng.Run(now, targets, engine.Options{Concurrency: c.conc})
	return items
}

// persist group-commits the buffered WAL frames for the cycle that just
// completed. Items were buffered in registration order, so frame order
// on disk matches the deterministic in-memory order.
func (c *shardCore) persist() error {
	if c.store == nil {
		return nil
	}
	for _, d := range c.pendDeltas {
		if err := c.store.AppendDelta(d.target, d.rec, d.fullEntries); err != nil {
			return err
		}
	}
	for _, g := range c.pendGaps {
		if err := c.store.AppendGap(g.target, g.at, g.reason); err != nil {
			return err
		}
	}
	return nil
}

// export captures the core's per-target state for the given targets,
// all current as of the cycle stamped at.
func (c *shardCore) export(at time.Time, targets []collect.Target) *checkpoint {
	ck := newCheckpoint()
	for _, t := range targets {
		c.exportInto(ck, t.Name)
		ck.asOf[t.Name] = at
	}
	return ck
}

// exportOne captures a single live target's state — the failback
// transfer path, where the source is alive and current. The caller
// stamps asOf.
func (c *shardCore) exportOne(name string) *checkpoint {
	ck := newCheckpoint()
	c.exportInto(ck, name)
	return ck
}

//mantra:statetransfer root=handoff-export
func (c *shardCore) exportInto(ck *checkpoint, name string) {
	if st := c.proc.ExportTarget(name); st != nil {
		ck.proc[name] = st
	}
	if ts, ok := c.log.ExportTarget(name); ok {
		ck.logs[name] = ts
	}
	if rs := c.eng.Stability(name); rs != nil {
		ck.stab[name] = rs.ExportState()
	}
	if h, ok := c.collector.TargetHealth(name); ok {
		ck.health[name] = h
	}
	if sn := c.eng.Latest(name); sn != nil {
		ck.latest[name] = sn
	}
}

// importTarget splices one target's checkpointed state into this core —
// the receiving side of a handoff. now anchors the restored breaker's
// cooldown.
//
//mantra:statetransfer root=handoff-import
func (c *shardCore) importTarget(name string, ck *checkpoint, now time.Time) {
	c.proc.ImportTarget(name, ck.proc[name])
	if ts, ok := ck.logs[name]; ok {
		c.log.ImportTarget(name, ts)
	}
	if st, ok := ck.stab[name]; ok {
		c.eng.SetStability(name, process.StabilityFromState(st))
	} else {
		c.eng.SetStability(name, nil)
	}
	c.collector.ResetTarget(name)
	if h, ok := ck.health[name]; ok {
		c.collector.RestoreHealth(h, now)
	}
	c.eng.SetLatest(name, ck.latest[name])
}

// removeTarget drops a target's live state after it moved elsewhere.
// The delta logger keeps its (now stale) records — fleet views read
// through the assignment map, so they are unreachable, and a later
// re-import replaces them wholesale.
//
//mantra:statetransfer root=handoff-remove
func (c *shardCore) removeTarget(name string) {
	c.proc.ImportTarget(name, nil)
	c.eng.SetStability(name, nil)
	c.eng.SetLatest(name, nil)
	c.collector.ResetTarget(name)
}

// worker is one supervised shard: a core, the goroutine driving it, and
// the supervisor-side lifecycle bookkeeping.
type worker struct {
	idx int
	gen int

	core   *shardCore
	reqCh  chan cycleReq
	respCh chan cycleResp
	done   chan struct{}

	// mu guards the fields shared between the worker goroutine and the
	// supervisor: the scripted kill, the heartbeat and the checkpoint.
	mu       sync.Mutex
	kill     KillMode
	lastBeat time.Time
	ckpt     *checkpoint

	// Supervisor-owned lifecycle state (driver goroutine only).
	alive     bool
	deadAt    time.Time
	restartAt time.Time
	backoff   time.Duration
	restarts  int
	cycles    int
}

// loop is the worker goroutine: one request, one cycle, one response.
// Every exit path closes done — the supervisor's crash detector.
func (w *worker) loop() {
	defer close(w.done)
	for req := range w.reqCh {
		switch w.takeKill() {
		case KillBeforeCycle:
			return
		case KillMidCycle:
			// The cycle runs — in-memory state mutates, WAL buffers
			// fill — and then the worker dies before persisting,
			// checkpointing or responding. Nothing from this cycle
			// survives it.
			w.core.runCycle(req.now, req.targets)
			return
		case Wedge:
			w.respCh <- cycleResp{wedged: true}
			continue
		}
		items := w.core.runCycle(req.now, req.targets)
		err := w.core.persist()
		ck := w.core.export(req.now, req.targets)
		w.mu.Lock()
		w.lastBeat = req.now
		w.ckpt = ck
		w.mu.Unlock()
		w.respCh <- cycleResp{items: items, err: err}
	}
}

// takeKill reads the scripted fault. Crash modes are one-shot; Wedge
// persists until the supervisor declares the worker dead.
func (w *worker) takeKill() KillMode {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := w.kill
	if k == KillBeforeCycle || k == KillMidCycle {
		w.kill = killNone
	}
	return k
}

// markDispatch seeds the heartbeat for a worker that has never beaten,
// so staleness is measured from its first dispatch, not from zero.
func (w *worker) markDispatch(now time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.lastBeat.IsZero() {
		w.lastBeat = now
	}
}

func (w *worker) beatAt() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastBeat
}

func (w *worker) checkpointRef() *checkpoint {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ckpt
}
