package shard_test

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/process"
	"repro/internal/core/shard"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

var fleetTargets = []string{"fixw", "ucsb-r1", "dom00-gw", "dom01-gw", "dom02-gw", "dom03-gw"}

// newFleetNetwork builds the deterministic 4-domain internetwork every
// supervisor test runs against. Random background faults are disabled:
// these tests reason about scripted shard faults, not collection luck.
func newFleetNetwork(t testing.TB) *netsim.Network {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	ncfg := netsim.DefaultConfig()
	ncfg.FlapPerDomainPerCycle = 0
	ncfg.RestartPerCycle = 0
	n := netsim.New(inet, wl, ncfg)
	if err := n.Track(fleetTargets...); err != nil {
		t.Fatal(err)
	}
	return n
}

func fleetConfig(shards int, heartbeat time.Duration) shard.Config {
	return shard.Config{
		Shards:           shards,
		HeartbeatTimeout: heartbeat,
		RestartBackoff:   time.Hour,
		Policy: collect.Policy{
			MaxAttempts:      2,
			BreakerThreshold: 1 << 20, // tests reason in gaps, not breaker skips
			BreakerCooldown:  90 * time.Minute,
			Sleep:            func(time.Duration) {},
		},
	}
}

func newFleet(t testing.TB, n *netsim.Network, cfg shard.Config) *shard.Supervisor {
	t.Helper()
	s, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for _, name := range fleetTargets {
		n.Router(name).Password = "pw"
		s.Register(collect.Target{
			Name:     name,
			Dialer:   collect.PipeDialer{Router: n.Router(name)},
			Password: "pw",
			Prompt:   name + "> ",
			Timeout:  5 * time.Second,
		})
	}
	return s
}

func step(t testing.TB, n *netsim.Network, s *shard.Supervisor) *shard.CycleResult {
	t.Helper()
	n.Step()
	res, err := s.RunCycle(n.Now())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// victimShard picks a shard that owns at least one target, preferring
// one that does not own them all (so a survivor has prior state too).
func victimShard(t testing.TB, s *shard.Supervisor) (int, []string) {
	t.Helper()
	st := s.Status()
	best := -1
	for _, row := range st.Shards {
		if len(row.Targets) == 0 || !row.Alive {
			continue
		}
		if best == -1 || len(st.Shards[best].Targets) > len(row.Targets) {
			best = row.Index
		}
	}
	if best == -1 {
		t.Fatal("no shard owns any targets")
	}
	return best, st.Shards[best].Targets
}

func TestSupervisorBasicFleetCycle(t *testing.T) {
	n := newFleetNetwork(t)
	s := newFleet(t, n, fleetConfig(4, 0))

	var last *shard.CycleResult
	for i := 0; i < 5; i++ {
		last = step(t, n, s)
	}
	if len(last.Blind) != 0 || len(last.Degraded) != 0 {
		t.Fatalf("clean fleet cycle: blind=%v degraded=%v", last.Blind, last.Degraded)
	}
	if len(last.Stats) != len(fleetTargets) || last.Stats[0].Target != "fixw" {
		t.Fatalf("stats not in registration order: %+v", last.Stats)
	}
	if last.FleetStats == nil || last.FleetStats.Routes == 0 {
		t.Fatalf("fleet stats = %+v", last.FleetStats)
	}

	if m := s.Merged(); m == nil || m.Target != shard.FleetTarget || len(m.Routes) == 0 {
		t.Fatalf("merged fleet snapshot = %+v", m)
	}
	if got := s.FleetProc().Series(shard.FleetTarget, process.MetricRoutes).Len(); got != 5 {
		t.Errorf("fleet series length = %d, want 5", got)
	}

	st := s.Status()
	if st.Cycle != 5 || st.Handoffs != 0 || len(st.Assignment) != len(fleetTargets) {
		t.Errorf("status = %+v", st)
	}
	owned := 0
	for _, row := range st.Shards {
		if !row.Alive || row.Generation != 0 {
			t.Errorf("shard %d not alive at gen 0: %+v", row.Index, row)
		}
		if !row.LastBeat.Equal(n.Now()) {
			t.Errorf("shard %d heartbeat = %v, want %v", row.Index, row.LastBeat, n.Now())
		}
		owned += len(row.Targets)
	}
	if owned != len(fleetTargets) {
		t.Errorf("shards own %d targets, want %d", owned, len(fleetTargets))
	}

	for i, row := range s.FleetHealth() {
		if row.Target != fleetTargets[i] || row.Shard < 0 || row.GapCount != 0 {
			t.Errorf("health row %d = %+v", i, row)
		}
		if row.LastSuccess.IsZero() {
			t.Errorf("health row %s has no last-success stamp", row.Target)
		}
	}
}

// TestSupervisorShardCountInvariance is the determinism contract: the
// same fleet over the same simulated timeline must publish byte-identical
// merged output, anomaly log and health (modulo the owning-shard index)
// at 1, 4 and 16 shards.
func TestSupervisorShardCountInvariance(t *testing.T) {
	type capture struct {
		merged, anoms, health []byte
	}
	run := func(shards int) capture {
		n := newFleetNetwork(t)
		s := newFleet(t, n, fleetConfig(shards, 0))
		for i := 0; i < 6; i++ {
			if res := step(t, n, s); len(res.Blind) != 0 {
				t.Fatalf("%d shards: blind targets %v", shards, res.Blind)
			}
		}
		var c capture
		var err error
		if c.merged, err = json.Marshal(s.Merged()); err != nil {
			t.Fatal(err)
		}
		if c.anoms, err = json.Marshal(s.FleetAnomalies()); err != nil {
			t.Fatal(err)
		}
		health := s.FleetHealth()
		for i := range health {
			health[i].Shard = 0 // the one field allowed to differ
		}
		if c.health, err = json.Marshal(health); err != nil {
			t.Fatal(err)
		}
		return c
	}

	base := run(1)
	for _, shards := range []int{4, 16} {
		got := run(shards)
		if string(got.merged) != string(base.merged) {
			t.Errorf("%d shards: merged fleet snapshot diverged from 1 shard", shards)
		}
		if string(got.anoms) != string(base.anoms) {
			t.Errorf("%d shards: fleet anomaly log diverged from 1 shard", shards)
		}
		if string(got.health) != string(base.health) {
			t.Errorf("%d shards: fleet health diverged from 1 shard", shards)
		}
	}
}

func TestSupervisorKillMidCycleHandoff(t *testing.T) {
	n := newFleetNetwork(t)
	s := newFleet(t, n, fleetConfig(2, 0)) // crash-only detection
	for i := 0; i < 4; i++ {
		step(t, n, s)
	}
	victim, moved := victimShard(t, s)
	s.Kill(victim, shard.KillMidCycle)

	// The killed cycle: the victim crashes after collecting but before
	// persisting or acknowledging, so its targets go blind this cycle.
	res := step(t, n, s)
	if res.Handoffs != 0 {
		t.Fatalf("handoff ran in the crash cycle itself: %+v", res)
	}
	if len(res.Blind) != len(moved) {
		t.Fatalf("crash cycle blind = %v, want %v", res.Blind, moved)
	}

	// Next boundary: reap, handoff, and the survivors cover everything.
	res = step(t, n, s)
	if res.Handoffs != 1 || len(res.Blind) != 0 || len(res.Stats) != len(fleetTargets) {
		t.Fatalf("post-handoff cycle = %+v", res)
	}

	st := s.Status()
	if st.Handoffs != 1 || st.TargetsMoved != len(moved) {
		t.Errorf("status after handoff = %+v", st)
	}
	if st.Shards[victim].Alive || len(st.Shards[victim].Targets) != 0 {
		t.Errorf("victim shard row = %+v", st.Shards[victim])
	}
	for _, name := range moved {
		if sh := st.Assignment[name]; sh == victim {
			t.Errorf("%s still assigned to dead shard %d", name, victim)
		}
	}

	// Continuity: the moved targets carry their full history — every
	// cycle is either a point or an explicit gap, and exactly the one
	// blind cycle is a gap.
	for _, name := range moved {
		sr := s.TargetSeries(name, process.MetricRoutes)
		if sr == nil {
			t.Fatalf("%s has no series after handoff", name)
		}
		if sr.Len()+sr.GapCount() != 6 || sr.GapCount() != 1 {
			t.Errorf("%s series after handoff: %d points + %d gaps, want 5+1",
				name, sr.Len(), sr.GapCount())
		}
	}
	for _, row := range s.FleetHealth() {
		wasMoved := false
		for _, name := range moved {
			if row.Target == name {
				wasMoved = true
			}
		}
		if wasMoved && row.GapCount != 1 {
			t.Errorf("moved target %s gap count = %d, want 1", row.Target, row.GapCount)
		}
		if !wasMoved && row.GapCount != 0 {
			t.Errorf("unmoved target %s gap count = %d, want 0", row.Target, row.GapCount)
		}
	}
}

func TestSupervisorWedgeCaughtByHeartbeat(t *testing.T) {
	n := newFleetNetwork(t)
	// 45-minute timeout over 30-minute cycles: one wedged cycle is
	// within tolerance, the second is stale.
	s := newFleet(t, n, fleetConfig(2, 45*time.Minute))
	for i := 0; i < 3; i++ {
		step(t, n, s)
	}
	victim, moved := victimShard(t, s)
	s.Kill(victim, shard.Wedge)

	res := step(t, n, s)
	if res.Handoffs != 0 || len(res.Blind) != len(moved) {
		t.Fatalf("first wedged cycle = %+v, want blind %v and no handoff", res, moved)
	}
	res = step(t, n, s)
	if res.Handoffs != 1 || len(res.Blind) != 0 {
		t.Fatalf("stale-heartbeat cycle = %+v, want the handoff", res)
	}
	st := s.Status()
	if st.Shards[victim].Alive {
		t.Error("wedged shard still marked alive after heartbeat expiry")
	}
	// One blind cycle for the moved targets — the wedged one. The
	// detection cycle itself already collects them: handoff runs at the
	// boundary before dispatch.
	for _, name := range moved {
		sr := s.TargetSeries(name, process.MetricRoutes)
		if sr == nil || sr.GapCount() != 1 {
			t.Errorf("%s gaps = %v, want the 1 wedged cycle", name, sr)
		}
	}
}

func TestSupervisorRestartAndFailback(t *testing.T) {
	n := newFleetNetwork(t)
	cfg := fleetConfig(2, 0)
	cfg.RestartBackoff = time.Hour // two 30-minute cycles
	s := newFleet(t, n, cfg)
	for i := 0; i < 3; i++ {
		step(t, n, s)
	}
	before := s.Status().Assignment
	victim, moved := victimShard(t, s)
	s.Kill(victim, shard.KillBeforeCycle)

	step(t, n, s) // crash cycle
	res := step(t, n, s)
	if res.Handoffs != 1 {
		t.Fatalf("expected handoff, got %+v", res)
	}
	deadAt := n.Now()

	// Backoff holds for two cycles, then the worker restarts and steals
	// its ranges back with a live transfer — no blind window.
	for i := 0; i < 2; i++ {
		res = step(t, n, s)
		if res.Handoffs != 0 || len(res.Blind) != 0 {
			t.Fatalf("cycle %v during backoff = %+v", n.Now(), res)
		}
		if row := s.Status().Shards[victim]; row.Alive && n.Now().Sub(deadAt) < time.Hour {
			t.Fatalf("victim restarted %v after death, before the backoff", n.Now().Sub(deadAt))
		}
	}

	st := s.Status()
	row := st.Shards[victim]
	if !row.Alive || row.Generation != 1 || row.Restarts != 1 {
		t.Fatalf("victim after backoff = %+v", row)
	}
	for name, sh := range before {
		if st.Assignment[name] != sh {
			t.Errorf("failback did not restore %s to shard %d (got %d)", name, sh, st.Assignment[name])
		}
	}
	if st.Handoffs != 2 { // the handoff plus the failback
		t.Errorf("handoff events = %d, want 2", st.Handoffs)
	}

	// The restored shard keeps collecting its old targets with history
	// intact: one blind cycle (the crash), everything else points.
	res = step(t, n, s)
	if len(res.Blind) != 0 || len(res.Stats) != len(fleetTargets) {
		t.Fatalf("post-failback cycle = %+v", res)
	}
	for _, name := range moved {
		sr := s.TargetSeries(name, process.MetricRoutes)
		if sr == nil || sr.GapCount() != 1 || sr.Len() != 7 {
			t.Errorf("%s after failback: %d points %d gaps, want 7/1", name, sr.Len(), sr.GapCount())
		}
	}
}

func TestSupervisorTotalOutageRecordsDarkWindow(t *testing.T) {
	n := newFleetNetwork(t)
	cfg := fleetConfig(1, 0)
	cfg.RestartBackoff = time.Hour
	s := newFleet(t, n, cfg)
	for i := 0; i < 2; i++ {
		step(t, n, s)
	}
	s.Kill(0, shard.KillBeforeCycle)

	step(t, n, s) // crash cycle: blind
	res := step(t, n, s)
	if res.Handoffs != 1 || len(res.Blind) != len(fleetTargets) {
		t.Fatalf("no-survivor handoff cycle = %+v", res)
	}
	if len(s.Status().Assignment) != 0 {
		t.Fatal("targets still assigned with no live shards")
	}

	// Dark until the restart; then the whole window is on the record as
	// explicit gaps even though the state itself could not survive.
	step(t, n, s)
	res = step(t, n, s) // backoff expired: restart + reassignment
	if len(res.Blind) != 0 || len(res.Stats) != len(fleetTargets) {
		t.Fatalf("post-restart cycle = %+v", res)
	}
	for _, row := range s.FleetHealth() {
		if row.Shard != 0 {
			t.Errorf("%s not reassigned to the restarted shard: %+v", row.Target, row)
		}
		// Blind cycles: crash, detection, and the two backoff cycles =
		// 4... but the restart cycle itself collected. The dark window
		// spans the 3 recorded cycles between last coverage and the
		// restart boundary.
		if row.GapCount != 3 {
			t.Errorf("%s gap count = %d, want 3 dark cycles", row.Target, row.GapCount)
		}
	}
}
