// Package shard implements fault-tolerant sharded collection: a
// supervisor consistent-hash-assigns the registered targets across N
// shard workers, each a self-contained monitor (collector, delta
// logger, processor, cycle engine, optional per-shard WAL), and a
// fan-in tier merges the per-shard results into one fleet view.
//
// Robustness is the point. Failure detection is heartbeat-based on the
// injected cycle timeline — a worker whose goroutine exited (crash) or
// whose last completed cycle is older than the heartbeat timeout
// (wedge) is declared dead at the next cycle boundary, never from a
// wall clock. A dead worker's targets hand off to the survivors:
// each moved target resumes from the shard checkpoint — WAL/delta
// chain, health ledger, breaker position, route-stability tracker and
// open anomaly episodes all transfer through the per-target
// export/import seams — with explicit gap markers covering the cycles
// the fleet was blind to. Restarts are supervised with bounded
// exponential backoff; a restored shard steals its ring ranges back
// (failback) through the same live transfer, with no blind window.
//
// The determinism contract extends to the fleet: collection is
// target-local and the fan-in (tables.MergeSnapshots, sorted fleet
// anomaly log, sorted status views) is order-independent, so a fixed
// target set and seed produces byte-identical merged output and
// anomaly log at 1, 4 or 16 shards.
package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"sync"

	"repro/internal/core/collect"
	"repro/internal/core/engine"
	"repro/internal/core/process"
	"repro/internal/core/tables"
)

// FleetTarget is the synthetic target name the merged fleet view is
// published under.
const FleetTarget = "fleet"

// handoffGapReason marks gap records covering cycles a target was blind
// during a dead shard's detection-and-handoff window.
const handoffGapReason = "shard handoff: blind cycle"

// Config parameterizes a Supervisor.
type Config struct {
	// Shards is the worker count; minimum 1.
	Shards int
	// HeartbeatTimeout declares a worker dead when its last completed
	// cycle is older than this on the cycle timeline (the `now` values
	// passed to RunCycle — never the wall clock). Zero disables
	// staleness detection; crashed workers are still caught by their
	// closed done channel.
	HeartbeatTimeout time.Duration
	// RestartBackoff is the delay before a dead worker's first restart
	// attempt, doubling per subsequent death up to MaxRestartBackoff.
	RestartBackoff    time.Duration
	MaxRestartBackoff time.Duration
	// Policy is each shard collector's resilience policy.
	Policy collect.Policy
	// Commands is the per-cycle dump set; defaults to StandardCommands.
	Commands []string
	// Concurrency is each shard's engine worker-pool bound; default 1.
	// Shards are already concurrent with one another.
	Concurrency int
	// MaxAnomalies caps each shard processor's episode ring.
	MaxAnomalies int
	// SeriesRetain bounds each shard processor's hot series rings; 0
	// keeps them unbounded. The long-horizon tsdb store retains full
	// history either way, so detection and queries are unaffected.
	SeriesRetain int
	// DataDir enables per-shard durable WALs under DataDir/shard-NN.
	DataDir         string
	SyncEveryAppend bool
	// Clock is the engines' instrumentation clock; nil means real
	// monotonic time. Simulations inject a virtual clock.
	Clock engine.Clock
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = time.Minute
	}
	if c.MaxRestartBackoff <= 0 {
		c.MaxRestartBackoff = 16 * c.RestartBackoff
	}
	if len(c.Commands) == 0 {
		c.Commands = collect.StandardCommands
	}
	if c.Concurrency < 1 {
		c.Concurrency = 1
	}
	return c
}

// ShardStatus is one worker's row in the /shards view.
type ShardStatus struct {
	Index      int       `json:"index"`
	Alive      bool      `json:"alive"`
	Generation int       `json:"generation"`
	Restarts   int       `json:"restarts"`
	Cycles     int       `json:"cycles"`
	Targets    []string  `json:"targets"`
	LastBeat   time.Time `json:"last_beat,omitzero"`
	DeadSince  time.Time `json:"dead_since,omitzero"`
	RestartAt  time.Time `json:"restart_at,omitzero"`
}

// FleetStatus is the supervisor's operator view, served at /shards.
type FleetStatus struct {
	Shards []ShardStatus `json:"shards"`
	// Assignment maps each target to its owning shard.
	Assignment map[string]int `json:"assignment"`
	// Handoffs counts dead-worker handoff and failback events;
	// TargetsMoved counts individual target moves across them.
	Handoffs         int           `json:"handoffs"`
	TargetsMoved     int           `json:"targets_moved"`
	HeartbeatTimeout time.Duration `json:"heartbeat_timeout_ns"`
	Cycle            int           `json:"cycle"`
}

// TargetHealthView is one target's fleet health row: the owning shard's
// collection ledger plus the gap count and last-success visibility that
// make handoff blind windows observable.
type TargetHealthView struct {
	collect.TargetHealth
	// Shard is the owning shard index, -1 while unassigned.
	Shard int `json:"shard"`
	// GapCount is how many cycles produced no data for this target —
	// collection failures and handoff blind windows alike.
	GapCount int `json:"gap_count"`
}

// CycleResult is one fleet cycle's outcome.
type CycleResult struct {
	At time.Time
	// Stats holds the successful targets' cycle statistics in
	// registration order.
	Stats []process.CycleStats
	// FleetStats is the merged fleet view's statistics, nil when no
	// target succeeded.
	FleetStats *process.CycleStats
	// Blind lists targets not collected at all this cycle (dead or
	// wedged shard, or no live shard to own them), sorted.
	Blind []string
	// Degraded lists targets whose collection failed normally, sorted.
	Degraded []string
	// Handoffs counts handoff events performed at this cycle boundary.
	Handoffs int
	// WALErrs carries per-shard persistence errors, if any.
	WALErrs []error
}

// ErrClosed is returned by RunCycle after Close.
var ErrClosed = errors.New("shard: supervisor closed")

// Supervisor owns the shard workers and drives fleet cycles.
//
// Register, RunCycle and Close must be called from one goroutine (the
// cycle driver), exactly like Monitor.RunCycle; the published views
// (Status, FleetAnomalies, FleetHealth, Merged) are safe
// from any goroutine, including while a cycle is in flight.
type Supervisor struct {
	cfg Config

	// Driver-goroutine state.
	targets    []collect.Target
	workers    []*worker
	assign     map[string]int
	regAt      map[string]time.Time
	lost       map[string]time.Time
	cycleTimes []time.Time
	handoffs   int
	moved      int
	cycle      int
	closed     bool
	fleetProc  *process.Processor

	// mu guards the published views below.
	mu         sync.Mutex
	status     FleetStatus
	lastMerged *tables.Snapshot
	lastAnoms  []process.Anomaly
	lastHealth []TargetHealthView
}

// New starts a supervisor with cfg.Shards live workers and no targets.
func New(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:       cfg,
		assign:    make(map[string]int),
		regAt:     make(map[string]time.Time),
		lost:      make(map[string]time.Time),
		fleetProc: process.New(),
		workers:   make([]*worker, cfg.Shards),
	}
	// The fleet processor keeps the merged series; detection stays on
	// the per-shard processors, where each target's episode state lives
	// and travels through handoffs.
	s.fleetProc.SetDetectors()
	for i := range s.workers {
		w, err := s.spawn(i, 0)
		if err != nil {
			s.closeWorkers()
			return nil, err
		}
		s.workers[i] = w
	}
	return s, nil
}

func (s *Supervisor) spawn(idx, gen int) (*worker, error) {
	dir := ""
	if s.cfg.DataDir != "" {
		dir = filepath.Join(s.cfg.DataDir, fmt.Sprintf("shard-%02d", idx))
	}
	core, err := newCore(s.cfg, dir)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", idx, err)
	}
	w := &worker{
		idx:     idx,
		gen:     gen,
		core:    core,
		reqCh:   make(chan cycleReq, 1),
		respCh:  make(chan cycleResp, 1),
		done:    make(chan struct{}),
		alive:   true,
		backoff: s.cfg.RestartBackoff,
	}
	go w.loop()
	return w, nil
}

// Register adds a target to the fleet, assigning it on the live ring.
// Call between cycles (or before the first one).
func (s *Supervisor) Register(t collect.Target) {
	for i := range s.targets {
		if s.targets[i].Name == t.Name {
			s.targets[i] = t
			return
		}
	}
	s.targets = append(s.targets, t)
	if len(s.cycleTimes) > 0 {
		s.regAt[t.Name] = s.cycleTimes[len(s.cycleTimes)-1]
	}
	if live := s.liveShards(); len(live) > 0 {
		s.assign[t.Name] = assignTarget(buildRing(live), t.Name)
	}
}

// Targets returns the registered target names in registration order.
func (s *Supervisor) Targets() []string {
	out := make([]string, len(s.targets))
	for i, t := range s.targets {
		out[i] = t.Name
	}
	return out
}

func (s *Supervisor) liveShards() []int {
	var live []int
	for i, w := range s.workers {
		if w != nil && w.alive {
			live = append(live, i)
		}
	}
	return live
}

// Kill scripts a fault on a shard worker, taking effect at its next
// dispatch — the chaos suite's entry point.
func (s *Supervisor) Kill(idx int, mode KillMode) {
	w := s.workers[idx]
	if w == nil {
		return
	}
	w.mu.Lock()
	w.kill = mode
	w.mu.Unlock()
}

// RunCycle drives one fleet cycle stamped at now: detect and hand off
// dead workers, restart those whose backoff expired, dispatch each live
// shard's targets, gather, and merge the fan-in views.
func (s *Supervisor) RunCycle(now time.Time) (*CycleResult, error) {
	if s.closed {
		return nil, ErrClosed
	}
	s.cycle++
	s.cycleTimes = append(s.cycleTimes, now)
	if len(s.cycleTimes) > 4096 {
		s.cycleTimes = append(s.cycleTimes[:0:0], s.cycleTimes[len(s.cycleTimes)-4096:]...)
	}
	res := &CycleResult{At: now}
	res.Handoffs = s.reap(now)
	s.restartDue(now)

	// Dispatch: every live worker gets a request (an empty one still
	// heartbeats), targets in global registration order.
	byShard := make([][]collect.Target, len(s.workers))
	blind := map[string]bool{}
	for _, t := range s.targets {
		if sh, ok := s.assign[t.Name]; ok && s.workers[sh].alive {
			byShard[sh] = append(byShard[sh], t)
		} else {
			blind[t.Name] = true
		}
	}
	dispatched := make([]bool, len(s.workers))
	for i, w := range s.workers {
		if w == nil || !w.alive {
			continue
		}
		w.markDispatch(now)
		dispatched[i] = true
		w.reqCh <- cycleReq{now: now, targets: byShard[i]}
	}

	// Gather in shard order; per-target results keyed for the final
	// registration-order views.
	statsOf := make(map[string]process.CycleStats)
	var snaps []*tables.Snapshot
	degraded := map[string]bool{}
	for i, w := range s.workers {
		if !dispatched[i] {
			continue
		}
		select {
		case resp := <-w.respCh:
			if resp.wedged {
				for _, t := range byShard[i] {
					blind[t.Name] = true
				}
				continue
			}
			w.cycles++
			if resp.err != nil {
				res.WALErrs = append(res.WALErrs, fmt.Errorf("shard %d: %w", i, resp.err))
			}
			for _, it := range resp.items {
				if it.Stats != nil {
					statsOf[it.Target.Name] = *it.Stats
					snaps = append(snaps, it.Snapshot)
				} else {
					degraded[it.Target.Name] = true
				}
			}
		case <-w.done:
			// Crashed mid-cycle: its targets are blind this cycle; the
			// next boundary's reap performs the handoff.
			for _, t := range byShard[i] {
				blind[t.Name] = true
			}
		}
	}

	for _, t := range s.targets {
		if st, ok := statsOf[t.Name]; ok {
			res.Stats = append(res.Stats, st)
		}
	}
	for name := range blind {
		res.Blind = append(res.Blind, name)
	}
	sort.Strings(res.Blind)
	for name := range degraded {
		res.Degraded = append(res.Degraded, name)
	}
	sort.Strings(res.Degraded)

	if len(snaps) > 0 {
		merged := tables.MergeSnapshots(FleetTarget, now, snaps...)
		st := s.fleetProc.Ingest(merged)
		res.FleetStats = &st
		s.publish(merged)
	} else {
		s.fleetProc.MarkGap(FleetTarget, now)
		s.publish(nil)
	}
	return res, nil
}

// reap declares dead workers and hands their targets off to survivors.
func (s *Supervisor) reap(now time.Time) int {
	events := 0
	for _, w := range s.workers {
		if w == nil || !w.alive || !s.isDead(w, now) {
			continue
		}
		s.handoff(w, now)
		events++
	}
	return events
}

// isDead reports crash (goroutine exited) or heartbeat staleness on the
// cycle timeline.
func (s *Supervisor) isDead(w *worker, now time.Time) bool {
	select {
	case <-w.done:
		return true
	default:
	}
	if s.cfg.HeartbeatTimeout <= 0 {
		return false
	}
	beat := w.beatAt()
	return !beat.IsZero() && now.Sub(beat) > s.cfg.HeartbeatTimeout
}

// handoff moves a dead worker's targets to the survivors, resuming each
// from the dead shard's checkpoint with gap markers covering the blind
// cycles, and schedules the restart.
func (s *Supervisor) handoff(w *worker, now time.Time) {
	w.alive = false
	w.deadAt = now
	w.restartAt = now.Add(w.backoff)
	w.backoff *= 2
	if w.backoff > s.cfg.MaxRestartBackoff {
		w.backoff = s.cfg.MaxRestartBackoff
	}
	// Stop the goroutine if it is still running (a wedged worker is
	// alive and draining its request channel) and release the WAL dir
	// for the eventual restart.
	close(w.reqCh)
	<-w.done
	if w.core.store != nil {
		w.core.store.Close()
		w.core.store = nil
	}
	s.handoffs++

	ck := w.checkpointRef()
	if ck == nil {
		ck = newCheckpoint()
	}
	live := s.liveShards()
	if len(live) == 0 {
		// No survivors: the targets go unassigned (blind) until a
		// restart succeeds. The checkpoint dies with the worker, so
		// each target restarts fresh; we remember where coverage ended
		// so the eventual new owner can gap-mark the whole dark window.
		for name, sh := range s.assign {
			if sh == w.idx {
				s.lost[name] = ck.asOf[name]
				delete(s.assign, name)
			}
		}
		return
	}
	ring := buildRing(live)
	prev := s.prevCycleTime(now)
	for _, t := range s.targets {
		if s.assign[t.Name] != w.idx {
			continue
		}
		dst := assignTarget(ring, t.Name)
		o := s.workers[dst]
		o.core.importTarget(t.Name, ck, now)
		s.markBlind(o, t.Name, ck.asOf[t.Name], now)
		s.assign[t.Name] = dst
		s.moved++
		s.refreshCkpt(o, t.Name, prev)
	}
}

// markBlind gap-marks the recorded cycles in (asOf, now) for a target
// on its new owner: the fleet was blind to the target there, and the
// record must say so explicitly — on the series, the delta log and the
// WAL.
func (s *Supervisor) markBlind(o *worker, name string, asOf, now time.Time) {
	if r := s.regAt[name]; r.After(asOf) {
		// Never collected before its registration point; don't invent
		// blindness for cycles that predate the target.
		asOf = r
	}
	for _, ct := range s.cycleTimes {
		if !ct.After(asOf) || !ct.Before(now) {
			continue
		}
		o.core.proc.MarkGap(name, ct)
		o.core.log.MarkGap(name, ct, handoffGapReason)
		if o.core.store != nil {
			o.core.store.AppendGap(name, ct, handoffGapReason)
		}
	}
}

// restartDue restarts dead workers whose backoff expired and fails
// their ring ranges back with a live transfer (no blind window).
func (s *Supervisor) restartDue(now time.Time) {
	for i, w := range s.workers {
		if w == nil || w.alive || now.Before(w.restartAt) {
			continue
		}
		nw, err := s.spawn(i, w.gen+1)
		if err != nil {
			// The WAL dir (or similar) is not ready; retry after
			// another backoff period.
			w.restartAt = now.Add(w.backoff)
			continue
		}
		nw.restarts = w.restarts + 1
		nw.backoff = w.backoff
		s.workers[i] = nw
		// Failback: adding a node to the ring only steals ranges, so
		// each target either stays put or moves to the restored shard.
		live := s.liveShards()
		ring := buildRing(live)
		prev := s.prevCycleTime(now)
		movedAny := false
		for _, t := range s.targets {
			dst := assignTarget(ring, t.Name)
			cur, ok := s.assign[t.Name]
			if ok && dst == cur {
				continue
			}
			if ok {
				src := s.workers[cur]
				one := src.core.exportOne(t.Name)
				one.asOf[t.Name] = prev
				s.workers[dst].core.importTarget(t.Name, one, now)
				src.core.removeTarget(t.Name)
				s.refreshCkpt(s.workers[dst], t.Name, prev)
				s.moved++
				movedAny = true
			} else if lt, lost := s.lost[t.Name]; lost {
				// The target sat unassigned after a total outage; its
				// state is gone but the dark window goes on the record.
				s.markBlind(s.workers[dst], t.Name, lt, now)
				s.refreshCkpt(s.workers[dst], t.Name, prev)
				delete(s.lost, t.Name)
				movedAny = true
			}
			s.assign[t.Name] = dst
		}
		if movedAny {
			s.handoffs++
		}
	}
}

// prevCycleTime returns the newest recorded cycle stamp strictly before
// now, or the zero time.
func (s *Supervisor) prevCycleTime(now time.Time) time.Time {
	for i := len(s.cycleTimes) - 1; i >= 0; i-- {
		if s.cycleTimes[i].Before(now) {
			return s.cycleTimes[i]
		}
	}
	return time.Time{}
}

// refreshCkpt folds a just-imported target into the receiving worker's
// in-memory checkpoint, so a death before its next completed cycle
// still hands the target off with state instead of losing it.
func (s *Supervisor) refreshCkpt(w *worker, name string, asOf time.Time) {
	one := w.core.exportOne(name)
	one.asOf[name] = asOf
	w.mu.Lock()
	if w.ckpt == nil {
		w.ckpt = newCheckpoint()
	}
	w.ckpt.merge(name, one)
	w.mu.Unlock()
}

// Close stops every worker goroutine and closes the WAL stores. The
// supervisor cannot run further cycles afterwards.
func (s *Supervisor) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.closeWorkers()
	return nil
}

func (s *Supervisor) closeWorkers() {
	for _, w := range s.workers {
		if w == nil {
			continue
		}
		if w.alive {
			close(w.reqCh)
			<-w.done
		}
		if w.core.store != nil {
			w.core.store.Close()
			w.core.store = nil
		}
	}
}
