// Consistent-hash target assignment. Each live shard projects a fixed
// set of virtual nodes onto a 64-bit ring; a target belongs to the
// first virtual node at or after its own hash. The properties the
// supervisor leans on:
//
//   - Deterministic: assignment is a pure function of the target name
//     and the live shard set — every run of a fixed fleet computes the
//     same shard map, which is what lets the determinism contract span
//     processes and shard counts.
//   - Minimal movement: removing a shard only reassigns the dead
//     shard's targets (its ranges fall through to the survivors), and
//     restoring it only steals targets back — survivors never shuffle
//     targets among themselves during a handoff or a failback.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is the virtual-node count per shard; enough to spread a
// small fleet's ranges evenly without making ring rebuilds expensive.
const ringVnodes = 64

type vnode struct {
	hash  uint64
	shard int
}

// ringHash is FNV-1a finished with the splitmix64 mixer. Raw FNV-1a of
// near-identical short keys — exactly what the vnode labels
// "shard-0#0".."shard-0#63" are — lands in tight clusters (the inputs
// differ in one trailing byte, and FNV's final multiply doesn't spread
// the low bits), turning the ring into one giant arc per shard; the
// finalizer scrambles every bit so the arcs interleave.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// buildRing constructs the sorted virtual-node ring over the live shard
// indexes.
func buildRing(live []int) []vnode {
	ring := make([]vnode, 0, len(live)*ringVnodes)
	for _, s := range live {
		prefix := "shard-" + strconv.Itoa(s) + "#"
		for v := 0; v < ringVnodes; v++ {
			ring = append(ring, vnode{hash: ringHash(prefix + strconv.Itoa(v)), shard: s})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].shard < ring[j].shard
	})
	return ring
}

// assignTarget returns the shard owning name on the ring. The ring must
// be non-empty.
func assignTarget(ring []vnode, name string) int {
	k := ringHash(name)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= k })
	if i == len(ring) {
		i = 0
	}
	return ring[i].shard
}
