package shard

import (
	"fmt"
	"reflect"
	"testing"
)

func ringNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dom%02d-r%d", i%12, i)
	}
	return out
}

func assignAll(live []int, names []string) map[string]int {
	ring := buildRing(live)
	out := make(map[string]int, len(names))
	for _, n := range names {
		out[n] = assignTarget(ring, n)
	}
	return out
}

func TestRingDeterministicAndCovering(t *testing.T) {
	live := []int{0, 1, 2, 3, 4, 5, 6, 7}
	names := ringNames(256)
	a := assignAll(live, names)
	b := assignAll(live, names)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("assignment is not deterministic for a fixed live set")
	}
	// Every shard should own something at 256 targets over 8 shards —
	// 64 vnodes per shard spreads the ranges well enough for that.
	counts := make(map[int]int)
	for _, sh := range a {
		counts[sh]++
	}
	for _, sh := range live {
		if counts[sh] == 0 {
			t.Errorf("shard %d owns no targets: %v", sh, counts)
		}
	}
}

// TestRingBalance pins the distribution quality: raw FNV-1a hashed the
// near-identical vnode labels into one tight cluster per shard, leaving
// the ring as a few giant arcs — a 3-shard fleet assigned every target
// to the same shard. With the splitmix64 finalizer the arcs interleave;
// require every shard to carry at least a third of its fair share at
// a few realistic fleet shapes.
func TestRingBalance(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 16} {
		live := make([]int, shards)
		for i := range live {
			live[i] = i
		}
		names := ringNames(240)
		counts := make(map[int]int)
		for _, sh := range assignAll(live, names) {
			counts[sh]++
		}
		min := len(names) / shards / 3
		for _, sh := range live {
			if counts[sh] < min {
				t.Errorf("%d shards: shard %d owns %d targets, want >= %d (counts %v)",
					shards, sh, counts[sh], min, counts)
			}
		}
	}
}

func TestRingMinimalMovementOnDeathAndReturn(t *testing.T) {
	all := []int{0, 1, 2, 3}
	names := ringNames(200)
	before := assignAll(all, names)
	after := assignAll([]int{0, 1, 3}, names) // shard 2 dies

	for _, n := range names {
		if before[n] != 2 {
			// Survivor-owned targets must not shuffle among survivors.
			if after[n] != before[n] {
				t.Fatalf("%s moved %d->%d though its shard survived", n, before[n], after[n])
			}
		} else if after[n] == 2 {
			t.Fatalf("%s still assigned to the dead shard", n)
		}
	}

	// The shard coming back steals exactly its old ranges: the map must
	// return to the original, so failback is a pure inverse of handoff.
	if restored := assignAll(all, names); !reflect.DeepEqual(restored, before) {
		t.Error("restoring the shard did not restore the original assignment")
	}
}
