// Fan-in views: after every cycle the supervisor rebuilds the merged
// fleet snapshot, the fleet anomaly log, the per-target health rows and
// the /shards status, and publishes them under the view mutex for HTTP
// readers. All four are deterministic functions of the per-shard state
// and the assignment map — gathered in registration or sorted order,
// never in map-iteration order — which is what keeps the fleet output
// byte-identical across shard counts.
package shard

import (
	"sort"

	"repro/internal/core/collect"
	"repro/internal/core/process"
	"repro/internal/core/tables"
	"repro/internal/core/tsdb"
)

// publish recomputes and swaps in the reader-facing views. Driver
// goroutine only; the workers are idle when it runs.
func (s *Supervisor) publish(merged *tables.Snapshot) {
	st := s.buildStatus()
	anoms := s.fleetAnomalies()
	health := s.fleetHealth()

	s.mu.Lock()
	s.status = st
	if merged != nil {
		s.lastMerged = merged
	}
	s.lastAnoms = anoms
	s.lastHealth = health
	s.mu.Unlock()
}

func (s *Supervisor) buildStatus() FleetStatus {
	st := FleetStatus{
		Assignment:       make(map[string]int, len(s.assign)),
		Handoffs:         s.handoffs,
		TargetsMoved:     s.moved,
		HeartbeatTimeout: s.cfg.HeartbeatTimeout,
		Cycle:            s.cycle,
	}
	for name, sh := range s.assign {
		st.Assignment[name] = sh
	}
	for i, w := range s.workers {
		row := ShardStatus{Index: i}
		if w != nil {
			row.Alive = w.alive
			row.Generation = w.gen
			row.Restarts = w.restarts
			row.Cycles = w.cycles
			row.LastBeat = w.beatAt()
			row.DeadSince = w.deadAt
			row.RestartAt = w.restartAt
		}
		for _, t := range s.targets {
			if sh, ok := s.assign[t.Name]; ok && sh == i {
				row.Targets = append(row.Targets, t.Name)
			}
		}
		sort.Strings(row.Targets)
		st.Shards = append(st.Shards, row)
	}
	return st
}

// fleetAnomalies merges the per-shard anomaly logs into one fleet log.
// Each target's episodes are read from its owning shard only — after a
// handoff the moved copies live there, re-keyed. The episode rings are
// append-only, so a target that bounced away and back leaves its owner
// holding both the original copies and the re-imported ones; the
// (target, kind, open-time) key is unique per episode, and the highest
// local ID — the most recent import — carries the current resolution
// state. The deduped log is sorted by (At, Target, Kind) and re-keyed
// with fleet-level IDs, making it independent of shard count, gather
// order and handoff history.
func (s *Supervisor) fleetAnomalies() []process.Anomaly {
	type key struct {
		target, kind string
		at           int64
	}
	best := make(map[key]process.Anomaly)
	for i, w := range s.workers {
		if w == nil {
			continue
		}
		owned := make(map[string]bool)
		for name, sh := range s.assign {
			if sh == i {
				owned[name] = true
			}
		}
		if len(owned) == 0 {
			continue
		}
		for _, an := range w.core.proc.Anomalies() {
			if !owned[an.Target] {
				continue
			}
			k := key{target: an.Target, kind: an.Kind, at: an.At.UnixNano()}
			if prev, ok := best[k]; !ok || an.ID > prev.ID {
				best[k] = an
			}
		}
	}
	out := make([]process.Anomaly, 0, len(best))
	for _, an := range best {
		out = append(out, an)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		if out[i].Target != out[j].Target {
			return out[i].Target < out[j].Target
		}
		return out[i].Kind < out[j].Kind
	})
	for i := range out {
		out[i].ID = i + 1
	}
	return out
}

// fleetHealth builds the per-target health rows in registration order:
// the owning shard's collection ledger plus the gap count, so handoff
// blind windows and breaker state are visible in one place.
func (s *Supervisor) fleetHealth() []TargetHealthView {
	out := make([]TargetHealthView, 0, len(s.targets))
	for _, t := range s.targets {
		row := TargetHealthView{
			TargetHealth: collect.TargetHealth{Target: t.Name},
			Shard:        -1,
		}
		if sh, ok := s.assign[t.Name]; ok {
			row.Shard = sh
			w := s.workers[sh]
			if h, hok := w.core.collector.TargetHealth(t.Name); hok {
				row.TargetHealth = h
			}
			if sr := w.core.proc.Series(t.Name, process.MetricRoutes); sr != nil {
				row.GapCount = sr.GapCount()
			}
		}
		out = append(out, row)
	}
	return out
}

// Status returns the last published /shards view. Safe from any
// goroutine.
func (s *Supervisor) Status() FleetStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

// Merged returns the last merged fleet snapshot, nil before the first
// successful cycle. Safe from any goroutine.
func (s *Supervisor) Merged() *tables.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastMerged
}

// FleetAnomalies returns the last published fleet anomaly log. Safe
// from any goroutine.
func (s *Supervisor) FleetAnomalies() []process.Anomaly {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastAnoms
}

// FleetHealth returns the last published per-target health rows. Safe
// from any goroutine.
func (s *Supervisor) FleetHealth() []TargetHealthView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastHealth
}

// FleetProc exposes the fleet-level processor (merged series, no
// detectors). Driver goroutine only.
func (s *Supervisor) FleetProc() *process.Processor { return s.fleetProc }

// TargetSeries reads a target's metric series from its owning shard,
// nil when the target is unassigned or unseen. Driver goroutine only —
// the same rule as Monitor.Series.
func (s *Supervisor) TargetSeries(name string, m process.Metric) *process.Series {
	sh, ok := s.assign[name]
	if !ok {
		return nil
	}
	return s.workers[sh].core.proc.Series(name, m)
}

// SeriesView resolves a target's series through the last *published*
// assignment, for HTTP readers: the live assign map may be mid-rewrite
// during a handoff, but the published copy is mu-guarded and only
// swaps between cycles. The series itself is read with the same
// between-cycle quiescence contract Monitor.Series gives /series in
// the unsharded daemon.
func (s *Supervisor) SeriesView(name string, m process.Metric) *process.Series {
	s.mu.Lock()
	sh, ok := s.status.Assignment[name]
	s.mu.Unlock()
	if !ok || sh < 0 || sh >= len(s.workers) {
		// Not a shard-owned target: the fleet-level series ("fleet")
		// live in the aggregation processor.
		return s.fleetProc.Series(name, m)
	}
	w := s.workers[sh]
	if w == nil {
		return nil
	}
	return w.core.proc.Series(name, m)
}

// QueryFleet executes a store query across the fleet: each target is
// answered by its owning shard's long-horizon store (the fleet-level
// synthetic targets by the aggregation processor's), and the per-target
// rows are merged with tsdb.Assemble — the same split execution a
// single store uses internally, so the result bytes are identical at
// any shard count. Resolution goes through the last *published*
// assignment like SeriesView, with the same between-cycle quiescence
// contract for the store reads.
func (s *Supervisor) QueryFleet(q tsdb.Query) (tsdb.Result, error) {
	// The published assignment map is rebuilt wholesale each publish and
	// never mutated afterwards, so holding the reference past the unlock
	// is safe.
	s.mu.Lock()
	assign := s.status.Assignment
	s.mu.Unlock()

	names := q.Targets
	if len(names) == 0 {
		seen := make(map[string]bool)
		for name := range assign {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
		for _, name := range s.fleetProc.Store().Targets() {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
		sort.Strings(names)
	}

	parts := make([]tsdb.TargetResult, 0, len(names))
	for _, name := range names {
		store := s.fleetProc.Store()
		if sh, ok := assign[name]; ok && sh >= 0 && sh < len(s.workers) && s.workers[sh] != nil {
			store = s.workers[sh].core.proc.Store()
		}
		tr, err := store.QueryTarget(q, name)
		if err != nil {
			return tsdb.Result{}, err
		}
		parts = append(parts, tr)
	}
	return tsdb.Assemble(q, parts), nil
}

// MaterializedView reads a target's full-history series from its owning
// shard's store (or the aggregation processor's for fleet-level names),
// through the published assignment — the sharded counterpart of
// Monitor.MaterializedSeries, backing ranged /series reads.
func (s *Supervisor) MaterializedView(name string, m process.Metric) *process.Series {
	s.mu.Lock()
	sh, ok := s.status.Assignment[name]
	s.mu.Unlock()
	if !ok || sh < 0 || sh >= len(s.workers) {
		return s.fleetProc.MaterializedSeries(name, m)
	}
	w := s.workers[sh]
	if w == nil {
		return nil
	}
	return w.core.proc.MaterializedSeries(name, m)
}
