package output

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core/process"
)

// Server exposes Mantra's results over HTTP: the web-based presentation
// layer (tables and graph data) of the paper's Output Interface. It is
// safe to register tables and sources while the server is serving.
type Server struct {
	mux  *http.ServeMux
	proc *process.Processor

	mu      sync.RWMutex
	tables  map[string]*Table
	health  func() any
	archive func() any
	stats   func() any
	shards  func() any
	anoms   func() []process.Anomaly
	series  func(target string, m process.Metric) *process.Series
	query   QueryFunc
}

// NewServer returns a server over a processor's live series. Summary
// tables are registered with RegisterTable.
func NewServer(p *process.Processor) *Server {
	s := &Server{
		mux:    http.NewServeMux(),
		proc:   p,
		tables: make(map[string]*Table),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/series/", s.handleSeries)
	s.mux.HandleFunc("/graph/", s.handleGraph)
	s.mux.HandleFunc("/tables/", s.handleTable)
	s.mux.HandleFunc("/anomalies", s.handleAnomalies)
	s.mux.HandleFunc("/health", s.handleHealth)
	s.mux.HandleFunc("/archive", s.handleArchive)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/shards", s.handleShards)
	s.mux.HandleFunc("/query", s.handleQuery)
	return s
}

// SetHealth installs the health snapshot source served at /health — the
// monitor wires its per-target collection health view here.
func (s *Server) SetHealth(fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health = fn
}

// SetArchive installs the archive stats source served at /archive — the
// monitor wires its durable-archive counters and recovery report here.
func (s *Server) SetArchive(fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.archive = fn
}

// SetStats installs the cycle-engine instrumentation source served at
// /stats — per-stage, per-target timings and queue-depth counters.
func (s *Server) SetStats(fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = fn
}

// SetShards installs the shard-supervisor status source served at
// /shards — per-shard liveness, assignment and handoff counters when
// collection runs sharded.
func (s *Server) SetShards(fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards = fn
}

// SetAnomalies overrides the anomaly source backing /anomalies. By
// default the server reads its processor's log directly; sharded
// deployments install the merged fleet log here, where per-shard IDs
// have been re-keyed into one fleet sequence.
func (s *Server) SetAnomalies(fn func() []process.Anomaly) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.anoms = fn
}

// SetSeries overrides the series source backing /series and /graph. By
// default the server reads its processor directly; sharded deployments
// install a resolver that routes each target to its owning shard's
// processor.
func (s *Server) SetSeries(fn func(target string, m process.Metric) *process.Series) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.series = fn
}

// lookupSeries resolves a target's series through the installed
// override, falling back to the server's own processor.
func (s *Server) lookupSeries(target string, m process.Metric) *process.Series {
	s.mu.RLock()
	fn := s.series
	s.mu.RUnlock()
	if fn != nil {
		return fn(target, m)
	}
	return s.proc.Series(target, m)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// RegisterTable publishes (or replaces) a summary table under its name.
func (s *Server) RegisterTable(t *Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[t.Name] = t
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	type index struct {
		Targets []string `json:"targets"`
		Metrics []string `json:"metrics"`
		Tables  []string `json:"tables"`
	}
	var idx index
	idx.Targets = s.proc.Targets()
	for _, m := range process.AllMetrics {
		idx.Metrics = append(idx.Metrics, string(m))
	}
	s.mu.RLock()
	for name := range s.tables {
		idx.Tables = append(idx.Tables, name)
	}
	s.mu.RUnlock()
	sort.Strings(idx.Tables)
	writeJSON(w, idx)
}

// handleSeries serves /series/<target>/<metric> as JSON x-y data. With
// any of ?from=, ?to= (RFC3339) or ?limit= present, the points come
// from the long-horizon store via the query engine — reaching history
// the bounded hot ring has already dropped — in the identical shape.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/series/"), "/")
	if len(parts) != 2 {
		http.Error(w, "use /series/<target>/<metric>", http.StatusBadRequest)
		return
	}
	if s.rangedSeries(w, r, parts[0], process.Metric(parts[1])) {
		return
	}
	series := s.lookupSeries(parts[0], process.Metric(parts[1]))
	if series == nil {
		http.NotFound(w, r)
		return
	}
	type point struct {
		T time.Time `json:"t"`
		V float64   `json:"v"`
		// Gap marks a cycle in which collection failed; V is meaningless.
		Gap bool `json:"gap,omitempty"`
	}
	pts := make([]point, 0, series.Len()+len(series.Gaps))
	for i := range series.Values {
		pts = append(pts, point{T: series.Times[i], V: series.Values[i]})
	}
	for _, g := range series.Gaps {
		pts = append(pts, point{T: g, Gap: true})
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].T.Before(pts[j].T) })
	writeJSON(w, pts)
}

// handleHealth serves the per-target collection health view as JSON.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.health
	s.mu.RUnlock()
	if fn == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, fn())
}

// handleArchive serves the durable-archive stats view as JSON.
func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.archive
	s.mu.RUnlock()
	if fn == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, fn())
}

// handleStats serves the cycle engine's pipeline instrumentation —
// per-stage timings, queue depth, per-target counters — as JSON.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.stats
	s.mu.RUnlock()
	if fn == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, fn())
}

// handleGraph serves /graph/<target>/<metric> as an ASCII chart.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/graph/"), "/")
	if len(parts) != 2 {
		http.Error(w, "use /graph/<target>/<metric>", http.StatusBadRequest)
		return
	}
	series := s.lookupSeries(parts[0], process.Metric(parts[1]))
	if series == nil {
		http.NotFound(w, r)
		return
	}
	g := NewGraph(parts[0]+": "+parts[1], parts[1])
	g.Overlay(parts[0], series)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = g.RenderASCII(w, 100, 20)
}

// handleTable serves /tables/<name> as plain text, honoring ?sort=col and
// ?q=substr query operations.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/tables/")
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	view := t
	if q := r.URL.Query().Get("q"); q != "" {
		view = view.Search(q)
	}
	if col := r.URL.Query().Get("sort"); col != "" {
		cp := &Table{Name: view.Name, Columns: view.Columns, Rows: append([][]Cell(nil), view.Rows...)}
		asc := r.URL.Query().Get("desc") == ""
		if err := cp.Sort(col, asc); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		view = cp
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = view.Render(w)
}

// handleAnomalies serves the anomaly log as a JSON array in detection
// order. Query filters: ?open=1 keeps only unresolved episodes,
// ?target=<name> and ?kind=<kind> filter by field, and ?cross=1 switches
// to the cross-target incident view (kinds open at two or more targets
// at once).
func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	src := s.anoms
	s.mu.RUnlock()
	q := r.URL.Query()
	if q.Get("cross") != "" {
		var ct []process.CrossTargetIncident
		if src != nil {
			ct = process.CrossTargetOf(src())
		} else {
			ct = s.proc.CrossTarget()
		}
		if ct == nil {
			ct = []process.CrossTargetIncident{}
		}
		writeJSON(w, ct)
		return
	}
	var an []process.Anomaly
	if src != nil {
		an = src()
	} else {
		an = s.proc.Anomalies()
	}
	openOnly := q.Get("open") != ""
	target := q.Get("target")
	kind := q.Get("kind")
	out := make([]process.Anomaly, 0, len(an))
	for _, a := range an {
		if openOnly && a.Resolved {
			continue
		}
		if target != "" && a.Target != target {
			continue
		}
		if kind != "" && a.Kind != kind {
			continue
		}
		out = append(out, a)
	}
	writeJSON(w, out)
}

// handleShards serves the shard-supervisor status view as JSON.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.shards
	s.mu.RUnlock()
	if fn == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, fn())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
