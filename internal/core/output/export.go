package output

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

// WriteCSV exports the table as CSV: header row, then each row with cells
// rendered by Cell.String.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	rec := make([]string, len(t.Columns))
	for _, row := range t.Rows {
		for i, c := range row {
			rec[i] = c.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTable is the exported JSON shape: column names and typed rows.
type jsonTable struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// WriteJSON exports the table as JSON. Numbers export as numbers, times
// as RFC 3339 strings, everything else as strings.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{Name: t.Name, Columns: t.Columns}
	for _, row := range t.Rows {
		out := make([]any, len(row))
		for i, c := range row {
			switch c.Kind {
			case CellNumber:
				out[i] = c.F
			case CellTime:
				out[i] = c.T
			default:
				out[i] = c.S
			}
		}
		jt.Rows = append(jt.Rows, out)
	}
	return json.NewEncoder(w).Encode(jt)
}
