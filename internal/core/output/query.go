// The /query endpoint: the HTTP face of the compressed long-horizon
// series store. Where /series serves a target's hot ring verbatim,
// /query executes range and aggregate queries over the full retained
// history — sealed blocks plus head — and is the seam the figure and
// mstat tooling consume, so its bytes must be deterministic: targets
// sorted, timestamps RFC3339 UTC, values round-tripped losslessly.
package output

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/core/process"
	"repro/internal/core/tsdb"
)

// QueryFunc executes one store query; sharded deployments install a
// fleet-merging implementation via SetQuery.
type QueryFunc func(q tsdb.Query) (tsdb.Result, error)

// SetQuery overrides the query source backing /query and the ranged
// form of /series. By default the server queries its own processor's
// store; sharded deployments install the supervisor's fleet merge,
// which answers per-target on the owning shard and assembles the
// results deterministically.
func (s *Server) SetQuery(fn QueryFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.query = fn
}

// runQuery resolves the installed query source, falling back to the
// server's own processor store.
func (s *Server) runQuery(q tsdb.Query) (tsdb.Result, error) {
	s.mu.RLock()
	fn := s.query
	s.mu.RUnlock()
	if fn != nil {
		return fn(q)
	}
	return s.proc.Query(q)
}

// queryPoint mirrors the /series point shape so ranged query output is
// byte-compatible with the live-ring endpoint.
type queryPoint struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
	// Gap marks a cycle in which collection failed; V is meaningless.
	Gap bool `json:"gap,omitempty"`
}

// queryTarget is one target's slice of a query result.
type queryTarget struct {
	Target string       `json:"target"`
	Points []queryPoint `json:"points,omitempty"`
	Agg    *tsdb.Agg    `json:"agg,omitempty"`
}

// queryResponse is the JSON body served at /query.
type queryResponse struct {
	Metric  string        `json:"metric"`
	Op      string        `json:"op"`
	Targets []queryTarget `json:"targets"`
}

// toResponse converts a store result to the wire shape, materializing
// int64 unixnano timestamps as UTC instants exactly the way the live
// ring records them, so streamed and post-hoc output bytes agree.
func toResponse(res tsdb.Result) queryResponse {
	out := queryResponse{Metric: res.Metric, Op: string(res.Op), Targets: make([]queryTarget, 0, len(res.Targets))}
	for _, tr := range res.Targets {
		qt := queryTarget{Target: tr.Target, Agg: tr.Agg}
		for _, pt := range tr.Points {
			qt.Points = append(qt.Points, queryPoint{T: time.Unix(0, pt.T).UTC(), V: pt.V, Gap: pt.Gap})
		}
		out.Targets = append(out.Targets, qt)
	}
	return out
}

// parseQuery builds a store query from URL parameters:
//
//	target  repeatable; empty means every target the store knows
//	metric  required metric name
//	op      range (default), min, max, avg, sum, count, rate, topk
//	from,to RFC3339 bounds, inclusive; either may be omitted
//	k       top-k size (op=topk)
//	by      top-k ranking aggregate: avg (default), min, max, sum, count, rate, last
//	tier    downsampling tier for range: 0 (raw, default), 10, 100
func parseQuery(r *http.Request) (tsdb.Query, error) {
	v := r.URL.Query()
	q := tsdb.Query{
		Targets: v["target"],
		Metric:  v.Get("metric"),
		Op:      tsdb.OpRange,
		By:      v.Get("by"),
	}
	if q.Metric == "" {
		return q, fmt.Errorf("metric is required")
	}
	if op := v.Get("op"); op != "" {
		switch tsdb.Op(op) {
		case tsdb.OpRange, tsdb.OpMin, tsdb.OpMax, tsdb.OpAvg, tsdb.OpSum, tsdb.OpCount, tsdb.OpRate, tsdb.OpTopK:
			q.Op = tsdb.Op(op)
		default:
			return q, fmt.Errorf("unknown op %q", op)
		}
	}
	var err error
	if q.From, err = parseBound(v.Get("from")); err != nil {
		return q, fmt.Errorf("from: %w", err)
	}
	if q.To, err = parseBound(v.Get("to")); err != nil {
		return q, fmt.Errorf("to: %w", err)
	}
	if k := v.Get("k"); k != "" {
		if q.K, err = strconv.Atoi(k); err != nil || q.K < 0 {
			return q, fmt.Errorf("bad k %q", k)
		}
	}
	if tier := v.Get("tier"); tier != "" {
		switch tier {
		case "0":
		case "10":
			q.Tier = tsdb.Tier10
		case "100":
			q.Tier = tsdb.Tier100
		default:
			return q, fmt.Errorf("bad tier %q (use 0, 10 or 100)", tier)
		}
	}
	return q, nil
}

// parseBound parses an RFC3339 instant into inclusive unixnano; empty
// means unbounded (0).
func parseBound(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return 0, err
	}
	return t.UnixNano(), nil
}

// handleQuery serves /query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.runQuery(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, toResponse(res))
}

// rangedSeries answers the ranged form of /series/<target>/<metric>
// (any of from, to, limit present) through the query engine, so bounds
// reach the full retained history rather than just the hot ring. The
// output shape matches the unranged endpoint exactly; limit keeps the
// newest n points. The bool reports whether ranged mode applied.
func (s *Server) rangedSeries(w http.ResponseWriter, r *http.Request, target string, m process.Metric) bool {
	v := r.URL.Query()
	if v.Get("from") == "" && v.Get("to") == "" && v.Get("limit") == "" {
		return false
	}
	from, err := parseBound(v.Get("from"))
	if err != nil {
		http.Error(w, "from: "+err.Error(), http.StatusBadRequest)
		return true
	}
	to, err := parseBound(v.Get("to"))
	if err != nil {
		http.Error(w, "to: "+err.Error(), http.StatusBadRequest)
		return true
	}
	limit := 0
	if l := v.Get("limit"); l != "" {
		if limit, err = strconv.Atoi(l); err != nil || limit < 0 {
			http.Error(w, "bad limit "+strconv.Quote(l), http.StatusBadRequest)
			return true
		}
	}
	res, err := s.runQuery(tsdb.Query{Targets: []string{target}, Metric: string(m), Op: tsdb.OpRange, From: from, To: to})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return true
	}
	pts := make([]queryPoint, 0)
	for _, tr := range res.Targets {
		if tr.Target != target {
			continue
		}
		for _, pt := range tr.Points {
			pts = append(pts, queryPoint{T: time.Unix(0, pt.T).UTC(), V: pt.V, Gap: pt.Gap})
		}
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].T.Before(pts[j].T) })
	if limit > 0 && len(pts) > limit {
		pts = pts[len(pts)-limit:]
	}
	writeJSON(w, pts)
	return true
}
