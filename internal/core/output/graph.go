package output

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/core/process"
)

// GraphSeries is one named line on a graph.
type GraphSeries struct {
	Name   string
	Series *process.Series
}

// Graph is the two-dimensional line graph model: multiple overlaid
// series with interactive axis ranges (the zoom operation).
type Graph struct {
	Title  string
	YLabel string
	series []GraphSeries
	// explicit ranges; zero values mean auto-scale.
	xMin, xMax time.Time
	yMin, yMax float64
	yRangeSet  bool
}

// NewGraph returns an empty graph.
func NewGraph(title, ylabel string) *Graph {
	return &Graph{Title: title, YLabel: ylabel}
}

// Overlay adds a series to the display — the paper's multi-graph overlay
// feature for analyzing relationships among variables.
func (g *Graph) Overlay(name string, s *process.Series) {
	g.series = append(g.series, GraphSeries{Name: name, Series: s})
}

// SeriesCount returns the number of overlaid series.
func (g *Graph) SeriesCount() int { return len(g.series) }

// SetXRange zooms the time axis; zero times reset to auto.
func (g *Graph) SetXRange(min, max time.Time) {
	g.xMin, g.xMax = min, max
}

// SetYRange zooms the value axis.
func (g *Graph) SetYRange(min, max float64) {
	g.yMin, g.yMax = min, max
	g.yRangeSet = true
}

// ResetZoom restores auto-scaling on both axes.
func (g *Graph) ResetZoom() {
	g.xMin, g.xMax = time.Time{}, time.Time{}
	g.yRangeSet = false
}

// bounds computes effective axis ranges.
func (g *Graph) bounds() (xMin, xMax time.Time, yMin, yMax float64, ok bool) {
	first := true
	for _, gs := range g.series {
		for i, tm := range gs.Series.Times {
			if !g.xMin.IsZero() && tm.Before(g.xMin) {
				continue
			}
			if !g.xMax.IsZero() && tm.After(g.xMax) {
				continue
			}
			v := gs.Series.Values[i]
			if first {
				xMin, xMax, yMin, yMax, first = tm, tm, v, v, false
				continue
			}
			if tm.Before(xMin) {
				xMin = tm
			}
			if tm.After(xMax) {
				xMax = tm
			}
			if v < yMin {
				yMin = v
			}
			if v > yMax {
				yMax = v
			}
		}
	}
	if first {
		return time.Time{}, time.Time{}, 0, 0, false
	}
	if !g.xMin.IsZero() {
		xMin = g.xMin
	}
	if !g.xMax.IsZero() {
		xMax = g.xMax
	}
	if g.yRangeSet {
		yMin, yMax = g.yMin, g.yMax
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	return xMin, xMax, yMin, yMax, true
}

// seriesGlyphs mark overlaid series in the ASCII rendering.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@'}

// RenderASCII draws the graph into a width×height character grid.
func (g *Graph) RenderASCII(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	xMin, xMax, yMin, yMax, ok := g.bounds()
	if !ok {
		_, err := fmt.Fprintf(w, "%s: no data\n", g.Title)
		return err
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	span := xMax.Sub(xMin)
	for si, gs := range g.series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i, tm := range gs.Series.Times {
			if tm.Before(xMin) || tm.After(xMax) {
				continue
			}
			v := gs.Series.Values[i]
			if v < yMin || v > yMax {
				continue
			}
			var x int
			if span > 0 {
				x = int(float64(width-1) * float64(tm.Sub(xMin)) / float64(span))
			}
			y := height - 1 - int(float64(height-1)*(v-yMin)/(yMax-yMin))
			grid[y][x] = glyph
		}
	}
	fmt.Fprintf(w, "%s\n", g.Title)
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = trimNum(yMax)
		case height - 1:
			label = trimNum(yMin)
		}
		fmt.Fprintf(w, "%10s |%s|\n", label, string(row))
	}
	fmt.Fprintf(w, "%10s  %-*s%s\n", "", width-len(xMax.UTC().Format("01/02"))+1,
		xMin.UTC().Format("2006-01-02"), xMax.UTC().Format("01/02"))
	var legend []string
	for si, gs := range g.series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], gs.Name))
	}
	fmt.Fprintf(w, "%10s  [%s] %s\n", "", strings.Join(legend, " "), g.YLabel)
	return nil
}

func trimNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Points returns the x-y coordinate data of one series within the current
// zoom — the "raw statistical results represented as x-y coordinate data"
// the data processor emits for chart plotting.
func (g *Graph) Points(seriesIdx int) (xs []time.Time, ys []float64) {
	if seriesIdx < 0 || seriesIdx >= len(g.series) {
		return nil, nil
	}
	gs := g.series[seriesIdx]
	for i, tm := range gs.Series.Times {
		if !g.xMin.IsZero() && tm.Before(g.xMin) {
			continue
		}
		if !g.xMax.IsZero() && tm.After(g.xMax) {
			continue
		}
		xs = append(xs, tm)
		ys = append(ys, gs.Series.Values[i])
	}
	return xs, ys
}
