// Package output implements Mantra's Output Interface: the interactive
// summary tables and two-dimensional line graphs the paper serves through
// Java applets, realized here as an in-memory model with search/sort/
// column-algebra operations, an ASCII graph renderer with overlay and
// zoom, and HTTP endpoints serving both as JSON and plain text.
package output

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Cell is one table value: a string, a number, or a timestamp.
type Cell struct {
	S string
	F float64
	T time.Time
	// Kind selects which field is meaningful.
	Kind CellKind
}

// CellKind discriminates cell contents.
type CellKind int

// Cell kinds.
const (
	CellString CellKind = iota
	CellNumber
	CellTime
)

// Str returns a string cell.
func Str(s string) Cell { return Cell{S: s, Kind: CellString} }

// Num returns a numeric cell.
func Num(f float64) Cell { return Cell{F: f, Kind: CellNumber} }

// Time returns a timestamp cell.
func Time(t time.Time) Cell { return Cell{T: t, Kind: CellTime} }

// String renders the cell. Whole numbers print without a fraction;
// fractional values round to one decimal for display.
func (c Cell) String() string {
	switch c.Kind {
	case CellNumber:
		if c.F == float64(int64(c.F)) {
			return strconv.FormatInt(int64(c.F), 10)
		}
		return strconv.FormatFloat(c.F, 'f', 1, 64)
	case CellTime:
		return c.T.UTC().Format("2006-01-02 15:04")
	}
	return c.S
}

// less orders two cells of the same kind.
func (c Cell) less(o Cell) bool {
	switch c.Kind {
	case CellNumber:
		return c.F < o.F
	case CellTime:
		return c.T.Before(o.T)
	}
	return c.S < o.S
}

// Table is an interactive summary table.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]Cell
}

// NewTable returns an empty table with the given columns.
func NewTable(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: columns}
}

// AddRow appends one row; it must match the column count.
func (t *Table) AddRow(cells ...Cell) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("output: row has %d cells, table %q has %d columns", len(cells), t.Name, len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// colIndex resolves a column name.
func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("output: no column %q in table %q", name, t.Name)
}

// Sort orders rows by the named column; stable, ascending or descending.
func (t *Table) Sort(column string, ascending bool) error {
	idx, err := t.colIndex(column)
	if err != nil {
		return err
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		if ascending {
			return t.Rows[i][idx].less(t.Rows[j][idx])
		}
		return t.Rows[j][idx].less(t.Rows[i][idx])
	})
	return nil
}

// Search returns a new table holding the rows whose rendered cells
// contain substr (case-insensitive) in any column.
func (t *Table) Search(substr string) *Table {
	needle := strings.ToLower(substr)
	out := &Table{Name: t.Name, Columns: t.Columns}
	for _, row := range t.Rows {
		for _, c := range row {
			if strings.Contains(strings.ToLower(c.String()), needle) {
				out.Rows = append(out.Rows, row)
				break
			}
		}
	}
	return out
}

// Filter returns a new table with the rows for which keep returns true.
func (t *Table) Filter(keep func(row []Cell) bool) *Table {
	out := &Table{Name: t.Name, Columns: t.Columns}
	for _, row := range t.Rows {
		if keep(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// AddComputedColumn appends a column computed from each row — the
// "algebraic manipulation of numeric columns" operation. fn receives the
// row and returns the new cell value.
func (t *Table) AddComputedColumn(name string, fn func(row []Cell) float64) {
	t.Columns = append(t.Columns, name)
	for i, row := range t.Rows {
		t.Rows[i] = append(row, Num(fn(row)))
	}
}

// SumColumn totals a numeric column.
func (t *Table) SumColumn(column string) (float64, error) {
	idx, err := t.colIndex(column)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, row := range t.Rows {
		sum += row[idx].F
	}
	return sum, nil
}

// ConvertTimes rewrites every time cell of a column into the given
// location — the date/time conversion operation of the applet interface.
func (t *Table) ConvertTimes(column string, loc *time.Location) error {
	idx, err := t.colIndex(column)
	if err != nil {
		return err
	}
	for _, row := range t.Rows {
		if row[idx].Kind == CellTime {
			row[idx].T = row[idx].T.In(loc)
		}
	}
	return nil
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		rendered[r] = make([]string, len(row))
		for i, c := range row {
			s := c.String()
			rendered[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s (%d rows)\n", t.Name, len(t.Rows)); err != nil {
		return err
	}
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s  ", widths[i], c)
		_ = i
	}
	fmt.Fprintln(w)
	for _, row := range rendered {
		for i, s := range row {
			fmt.Fprintf(w, "%-*s  ", widths[i], s)
		}
		fmt.Fprintln(w)
	}
	return nil
}
