package output

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core/process"
	"repro/internal/core/tables"
	"repro/internal/sim"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tb := NewTable("sessions", "group", "density", "kbps", "seen")
	rows := []struct {
		g string
		d float64
		k float64
	}{
		{"224.2.0.1", 3, 64}, {"224.2.0.2", 1, 0.5}, {"224.9.0.9", 12, 512},
	}
	for i, r := range rows {
		if err := tb.AddRow(Str(r.g), Num(r.d), Num(r.k), Time(sim.Epoch.Add(time.Duration(i)*time.Hour))); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestTableAddRowValidates(t *testing.T) {
	tb := NewTable("t", "a", "b")
	if err := tb.AddRow(Str("only-one")); err == nil {
		t.Error("short row accepted")
	}
}

func TestTableSort(t *testing.T) {
	tb := sampleTable(t)
	if err := tb.Sort("kbps", false); err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][0].S != "224.9.0.9" {
		t.Errorf("desc sort wrong: %v", tb.Rows[0][0])
	}
	if err := tb.Sort("group", true); err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][0].S != "224.2.0.1" {
		t.Errorf("asc sort wrong: %v", tb.Rows[0][0])
	}
	if err := tb.Sort("nope", true); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestTableSearchAndFilter(t *testing.T) {
	tb := sampleTable(t)
	hit := tb.Search("224.9")
	if len(hit.Rows) != 1 || hit.Rows[0][0].S != "224.9.0.9" {
		t.Errorf("search = %v", hit.Rows)
	}
	if got := tb.Search("ZZZ"); len(got.Rows) != 0 {
		t.Error("search false positive")
	}
	dense := tb.Filter(func(row []Cell) bool { return row[1].F > 2 })
	if len(dense.Rows) != 2 {
		t.Errorf("filter = %d rows", len(dense.Rows))
	}
}

func TestTableColumnAlgebra(t *testing.T) {
	tb := sampleTable(t)
	tb.AddComputedColumn("unicast_kbps", func(row []Cell) float64 {
		return row[1].F * row[2].F
	})
	if len(tb.Columns) != 5 {
		t.Fatal("column not added")
	}
	if tb.Rows[2][4].F != 12*512 {
		t.Errorf("computed = %v", tb.Rows[2][4])
	}
	sum, err := tb.SumColumn("density")
	if err != nil || sum != 16 {
		t.Errorf("sum = %f err=%v", sum, err)
	}
	if _, err := tb.SumColumn("ghost"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestTableTimeConversion(t *testing.T) {
	tb := sampleTable(t)
	loc := time.FixedZone("PST", -8*3600)
	if err := tb.ConvertTimes("seen", loc); err != nil {
		t.Fatal(err)
	}
	if got := tb.Rows[0][3].T.Location().String(); got != "PST" {
		t.Errorf("location = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := sampleTable(t)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sessions (3 rows)") || !strings.Contains(out, "224.9.0.9") {
		t.Errorf("render:\n%s", out)
	}
}

func seriesOf(vals ...float64) *process.Series {
	s := &process.Series{}
	for i, v := range vals {
		s.Append(sim.Epoch.Add(time.Duration(i)*time.Hour), v)
	}
	return s
}

func TestGraphRenderASCII(t *testing.T) {
	g := NewGraph("routes at FIXW", "routes")
	g.Overlay("fixw", seriesOf(100, 120, 400, 110, 105))
	var sb strings.Builder
	if err := g.RenderASCII(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "routes at FIXW") || !strings.Contains(out, "*") {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(out, "400") || !strings.Contains(out, "100") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestGraphOverlayAndLegend(t *testing.T) {
	g := NewGraph("cmp", "n")
	g.Overlay("a", seriesOf(1, 2, 3))
	g.Overlay("b", seriesOf(3, 2, 1))
	if g.SeriesCount() != 2 {
		t.Fatal("overlay lost")
	}
	var sb strings.Builder
	_ = g.RenderASCII(&sb, 30, 8)
	if !strings.Contains(sb.String(), "*=a") || !strings.Contains(sb.String(), "+=b") {
		t.Errorf("legend missing:\n%s", sb.String())
	}
}

func TestGraphZoom(t *testing.T) {
	g := NewGraph("z", "v")
	g.Overlay("s", seriesOf(1, 2, 3, 4, 5, 6))
	g.SetXRange(sim.Epoch.Add(2*time.Hour), sim.Epoch.Add(4*time.Hour))
	xs, ys := g.Points(0)
	if len(xs) != 3 || ys[0] != 3 || ys[2] != 5 {
		t.Errorf("zoomed points = %v %v", xs, ys)
	}
	g.SetYRange(0, 100)
	var sb strings.Builder
	_ = g.RenderASCII(&sb, 30, 8)
	if !strings.Contains(sb.String(), "100") {
		t.Errorf("y zoom not applied:\n%s", sb.String())
	}
	g.ResetZoom()
	xs, _ = g.Points(0)
	if len(xs) != 6 {
		t.Errorf("reset failed: %d points", len(xs))
	}
	if xs2, ys2 := g.Points(9); xs2 != nil || ys2 != nil {
		t.Error("out-of-range series index should be nil")
	}
}

func TestGraphEmpty(t *testing.T) {
	g := NewGraph("empty", "v")
	var sb strings.Builder
	if err := g.RenderASCII(&sb, 30, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty graph: %s", sb.String())
	}
}

func ingestSample(p *process.Processor) {
	sn := &tables.Snapshot{
		Target: "fixw",
		At:     sim.Epoch,
		Pairs: tables.PairTable{
			{Source: addr.MustParse("1.1.1.1"), Group: addr.MustParse("224.1.1.1"), RateKbps: 64, Flags: "D"},
		},
		Routes: tables.RouteTable{
			{Prefix: addr.MustParsePrefix("10.0.0.0/8"), Metric: 1},
		},
	}
	p.Ingest(sn)
}

func TestHTTPEndpoints(t *testing.T) {
	p := process.New()
	ingestSample(p)
	s := NewServer(p)
	s.RegisterTable(sampleTable(t))

	srv := httptest.NewServer(s)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "fixw") {
		t.Errorf("index: %d %s", code, body)
	}
	code, body := get("/series/fixw/sessions")
	if code != 200 {
		t.Fatalf("series: %d", code)
	}
	var pts []map[string]any
	if err := json.Unmarshal([]byte(body), &pts); err != nil || len(pts) != 1 {
		t.Errorf("series json: %v %s", err, body)
	}
	if code, _ := get("/series/fixw/nope"); code != 404 {
		t.Error("unknown metric should 404")
	}
	if code, body := get("/graph/fixw/sessions"); code != 200 || !strings.Contains(body, "sessions") {
		t.Errorf("graph: %d %s", code, body)
	}
	if code, body := get("/tables/sessions?sort=kbps&desc=1"); code != 200 || !strings.Contains(body, "224.9.0.9") {
		t.Errorf("table: %d %s", code, body)
	}
	if code, body := get("/tables/sessions?q=224.2.0.2"); code != 200 || strings.Contains(body, "224.9.0.9") {
		t.Errorf("table search: %d %s", code, body)
	}
	if code, _ := get("/tables/sessions?sort=ghost"); code != 400 {
		t.Error("bad sort column should 400")
	}
	if code, _ := get("/tables/none"); code != 404 {
		t.Error("unknown table should 404")
	}
	if code, body := get("/anomalies"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Errorf("anomalies: %d %s", code, body)
	}
	if code, _ := get("/bogus"); code != 404 {
		t.Error("bogus path should 404")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := sampleTable(t)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "group,density,kbps,seen" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "224.2.0.1,3,64,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestTableWriteJSON(t *testing.T) {
	tb := sampleTable(t)
	var sb strings.Builder
	if err := tb.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name    string   `json:"name"`
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "sessions" || len(decoded.Columns) != 4 || len(decoded.Rows) != 3 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if v, ok := decoded.Rows[0][1].(float64); !ok || v != 3 {
		t.Errorf("numeric cell decoded as %T %v", decoded.Rows[0][1], decoded.Rows[0][1])
	}
}

// spikeAnomalies seeds a processor with route-injection episodes: open
// on targets a and b, plus a resolved one on a.
func spikeAnomalies(p *process.Processor) {
	at := sim.Epoch
	ingest := func(target string, routes int) {
		var rt tables.RouteTable
		for i := 0; i < routes; i++ {
			rt = append(rt, tables.RouteEntry{Prefix: addr.PrefixFrom(addr.IP(uint32(i)<<12), 24), Metric: 1})
		}
		p.Ingest(&tables.Snapshot{Target: target, At: at, Routes: rt})
		at = at.Add(30 * time.Minute)
	}
	for i := 0; i < 4; i++ {
		ingest("a", 500)
		ingest("b", 500)
	}
	ingest("a", 1400) // opens, then resolves below
	ingest("a", 500)
	for i := 0; i < 8; i++ {
		ingest("a", 500)
	}
	ingest("a", 1400) // open on a
	ingest("b", 1400) // open on b
}

func TestAnomalyEndpointFilters(t *testing.T) {
	p := process.New()
	spikeAnomalies(p)
	s := NewServer(p)
	srv := httptest.NewServer(s)
	defer srv.Close()

	fetch := func(path string, v any) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}

	var all []process.Anomaly
	fetch("/anomalies", &all)
	if len(all) != 3 {
		t.Fatalf("anomalies = %+v", all)
	}
	var open []process.Anomaly
	fetch("/anomalies?open=1", &open)
	if len(open) != 2 {
		t.Fatalf("open = %+v", open)
	}
	var onB []process.Anomaly
	fetch("/anomalies?target=b&kind=route-injection", &onB)
	if len(onB) != 1 || onB[0].Target != "b" {
		t.Fatalf("target filter = %+v", onB)
	}
	var none []process.Anomaly
	fetch("/anomalies?kind=ghost", &none)
	if len(none) != 0 {
		t.Fatalf("kind filter = %+v", none)
	}
	var cross []process.CrossTargetIncident
	fetch("/anomalies?cross=1", &cross)
	if len(cross) != 1 || cross[0].Kind != "route-injection" || len(cross[0].Targets) != 2 {
		t.Fatalf("cross = %+v", cross)
	}
}
