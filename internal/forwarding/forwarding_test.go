package forwarding

import (
	"math"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

var (
	s1 = addr.MustParse("128.111.41.2")
	s2 = addr.MustParse("130.207.8.4")
	g1 = addr.MustParse("224.2.0.1")
	g2 = addr.MustParse("224.2.0.2")
)

func TestUpsertPreservesCounters(t *testing.T) {
	tb := NewTable(1, 0)
	now := sim.Epoch
	k := Key{Source: s1, Group: g1}
	tb.Account(k, 1000, time.Minute, now)
	e := tb.Upsert(k, 3, []int{4, 5}, FlagSparse, now.Add(time.Minute))
	if e.Bytes != 1000 {
		t.Errorf("Bytes = %d", e.Bytes)
	}
	if e.IIF != 3 || len(e.OIFs) != 2 || !e.Flags.Has(FlagSparse) {
		t.Errorf("entry = %+v", e)
	}
	if !e.Created.Equal(now) {
		t.Error("Created reset by Upsert")
	}
}

func TestAccountCreatesDenseEntry(t *testing.T) {
	tb := NewTable(1, 0)
	e := tb.Account(Key{Source: s1, Group: g1}, 7000, time.Minute, sim.Epoch)
	if !e.Flags.Has(FlagDense) || e.IIF != -1 {
		t.Errorf("implicit entry = %+v", e)
	}
	if e.Packets == 0 || e.Bytes != 7000 {
		t.Errorf("counters = %d/%d", e.Packets, e.Bytes)
	}
}

func TestRateEstimate(t *testing.T) {
	tb := NewTable(1, 0)
	k := Key{Source: s1, Group: g1}
	now := sim.Epoch
	// 64 kbps for consecutive windows: 64_000/8 bytes per second.
	bytesPerMin := uint64(64000 / 8 * 60)
	var rate float64
	for i := 0; i < 8; i++ {
		e := tb.Account(k, bytesPerMin, time.Minute, now)
		rate = e.RateKbps
		now = now.Add(time.Minute)
	}
	if math.Abs(rate-64) > 1 {
		t.Errorf("RateKbps = %f, want ~64", rate)
	}
}

func TestDecayIdle(t *testing.T) {
	tb := NewTable(1, time.Hour)
	k := Key{Source: s1, Group: g1}
	now := sim.Epoch
	tb.Account(k, 100000, time.Minute, now)
	first := tb.Get(k).RateKbps
	now = now.Add(30 * time.Minute)
	tb.DecayIdle(now, 30*time.Minute)
	if tb.Get(k) == nil {
		t.Fatal("entry expired too early")
	}
	if tb.Get(k).RateKbps >= first {
		t.Error("rate did not decay")
	}
	// After the idle timeout, dense entries expire.
	now = now.Add(2 * time.Hour)
	if n := tb.DecayIdle(now, 2*time.Hour); n != 1 {
		t.Errorf("expired = %d", n)
	}
	if tb.Len() != 0 {
		t.Error("entry survived idle timeout")
	}
}

func TestDecayIdleKeepsSparse(t *testing.T) {
	tb := NewTable(1, time.Hour)
	k := Key{Source: s1, Group: g1}
	now := sim.Epoch
	tb.Upsert(k, 1, []int{2}, FlagSparse, now)
	tb.DecayIdle(now.Add(10*time.Hour), time.Hour)
	if tb.Get(k) == nil {
		t.Error("sparse entry must survive idleness while joined")
	}
}

func TestRemoveAndRemoveIf(t *testing.T) {
	tb := NewTable(1, 0)
	now := sim.Epoch
	tb.Upsert(Key{Source: s1, Group: g1}, 1, nil, FlagDense, now)
	tb.Upsert(Key{Source: s2, Group: g1}, 1, nil, FlagSparse, now)
	tb.Upsert(Key{Source: s1, Group: g2}, 1, nil, FlagSparse, now)
	if !tb.Remove(Key{Source: s1, Group: g1}) {
		t.Error("Remove missed")
	}
	if tb.Remove(Key{Source: s1, Group: g1}) {
		t.Error("double Remove succeeded")
	}
	n := tb.RemoveIf(func(e *Entry) bool { return e.Flags.Has(FlagSparse) })
	if n != 2 || tb.Len() != 0 {
		t.Errorf("RemoveIf = %d, len = %d", n, tb.Len())
	}
}

func TestEntriesSortedAndCopied(t *testing.T) {
	tb := NewTable(1, 0)
	now := sim.Epoch
	tb.Upsert(Key{Source: s2, Group: g2}, 1, []int{9}, FlagDense, now)
	tb.Upsert(Key{Source: s1, Group: g1}, 1, nil, FlagDense, now)
	tb.Upsert(Key{Source: s2, Group: g1}, 1, nil, FlagDense, now)
	es := tb.Entries()
	if len(es) != 3 {
		t.Fatalf("len = %d", len(es))
	}
	if es[0].Key != (Key{Source: s1, Group: g1}) || es[2].Key.Group != g2 {
		t.Errorf("order wrong: %v", es)
	}
	es[0].OIFs = append(es[0].OIFs, 42)
	if got := tb.Get(Key{Source: s1, Group: g1}); len(got.OIFs) != 0 {
		t.Error("Entries aliases internal state")
	}
}

func TestGroupsAndTotalRate(t *testing.T) {
	tb := NewTable(1, 0)
	now := sim.Epoch
	tb.Account(Key{Source: s1, Group: g1}, 60000, time.Minute, now)
	tb.Account(Key{Source: s2, Group: g1}, 60000, time.Minute, now)
	tb.Account(Key{Source: s1, Group: g2}, 60000, time.Minute, now)
	if gs := tb.Groups(); len(gs) != 2 {
		t.Errorf("Groups = %v", gs)
	}
	if tb.TotalRateKbps() <= 0 {
		t.Error("TotalRateKbps should be positive")
	}
}

func TestFlagString(t *testing.T) {
	if (FlagDense | FlagPruned).String() != "DP" {
		t.Errorf("got %q", (FlagDense | FlagPruned).String())
	}
	if (FlagSparse | FlagSPT | FlagRegister).String() != "STR" {
		t.Errorf("got %q", (FlagSparse | FlagSPT | FlagRegister).String())
	}
	if Flag(0).String() != "-" {
		t.Error("zero flags should render as -")
	}
}

func TestRouterAccessor(t *testing.T) {
	if NewTable(5, 0).Router() != 5 {
		t.Error("Router() wrong")
	}
}

func TestTotalRateKbpsOrderIndependent(t *testing.T) {
	// Regression for the mantralint floatsum finding: the total used to be
	// accumulated in map-iteration order, so its low bits varied run to
	// run. Rates with wildly different magnitudes make any order change
	// visible; 200 repeated reads must be bit-identical.
	tb := NewTable(1, 0)
	now := sim.Epoch
	rates := []float64{1e16, 1.0, -1e16, 0.25, 3.5e-3, 7e9, -7e9, 0.125}
	for i, r := range rates {
		k := Key{Source: addr.IP(uint32(i + 1)), Group: g1}
		e := tb.Upsert(k, 0, nil, FlagDense, now)
		e.RateKbps = r
	}
	first := math.Float64bits(tb.TotalRateKbps())
	for i := 0; i < 200; i++ {
		if got := math.Float64bits(tb.TotalRateKbps()); got != first {
			t.Fatalf("read %d: sum bits %x != %x; map order leaked into the total", i, got, first)
		}
	}
	// The sum must be the sorted-key order, not whatever cancellation
	// another order would produce.
	want := 0.0
	for i := range rates {
		want += tb.entries[Key{Source: addr.IP(uint32(i + 1)), Group: g1}].RateKbps
	}
	if tb.TotalRateKbps() != want {
		t.Fatalf("TotalRateKbps = %v, want sorted-order sum %v", tb.TotalRateKbps(), want)
	}
}
