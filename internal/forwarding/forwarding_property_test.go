package forwarding

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

// TestTableInvariantsUnderRandomOps drives a table with random operation
// sequences and checks structural invariants: Len matches Entries, every
// accounted byte is reflected in counters, and counters never decrease.
func TestTableInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(1, time.Hour)
		now := sim.Epoch
		totalBytes := make(map[Key]uint64)
		for op := 0; op < 200; op++ {
			k := Key{
				Source: addr.V4(10, 0, 0, byte(rng.Intn(6)+1)),
				Group:  addr.V4(224, 1, 1, byte(rng.Intn(4)+1)),
			}
			switch rng.Intn(4) {
			case 0:
				tb.Upsert(k, rng.Intn(5), []int{rng.Intn(8)}, FlagDense, now)
			case 1:
				b := uint64(rng.Intn(100000))
				e := tb.Account(k, b, 30*time.Minute, now)
				totalBytes[k] += b
				if e.Bytes != totalBytes[k] {
					return false
				}
			case 2:
				if tb.Remove(k) {
					delete(totalBytes, k)
				}
			case 3:
				now = now.Add(30 * time.Minute)
				tb.DecayIdle(now, 30*time.Minute)
				// Dense entries may expire; forget their counters.
				for kk := range totalBytes {
					if tb.Get(kk) == nil {
						delete(totalBytes, kk)
					}
				}
			}
			if tb.Len() != len(tb.Entries()) {
				return false
			}
			for _, e := range tb.Entries() {
				if e.RateKbps < 0 || e.Bytes < uint64(0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEntriesOrderProperty verifies the (group, source) dump ordering on
// random fills — the order the CLI dump and the paper's tables rely on.
func TestEntriesOrderProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		tb := NewTable(1, 0)
		for _, s := range seeds {
			k := Key{Source: addr.IP(s), Group: addr.MulticastBase + addr.IP(s%1000)}
			tb.Upsert(k, -1, nil, FlagDense, sim.Epoch)
		}
		es := tb.Entries()
		for i := 0; i+1 < len(es); i++ {
			a, b := es[i].Key, es[i+1].Key
			if a.Group > b.Group || (a.Group == b.Group && a.Source >= b.Source) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
