// Package forwarding implements the multicast forwarding cache of a
// router: (source, group) entries with incoming/outgoing interface state
// and per-entry traffic counters.
//
// The forwarding table is the primary data source of the paper's usage
// monitoring: Mantra derives its Pair, Participant and Session tables from
// exactly this state, and classifies senders against passive participants
// using the per-entry bandwidth estimate (4 kbps threshold).
package forwarding

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/topo"
)

// Flag bits describing how an entry was created and is being used.
type Flag uint8

// Entry flags.
const (
	// FlagDense marks flood-and-prune (DVMRP / PIM-DM) state.
	FlagDense Flag = 1 << iota
	// FlagSparse marks explicit-join (PIM-SM) state.
	FlagSparse
	// FlagPruned marks dense-mode state whose downstream is fully pruned.
	FlagPruned
	// FlagSPT marks sparse-mode state on the shortest-path tree.
	FlagSPT
	// FlagRegister marks state created by PIM register encapsulation.
	FlagRegister
)

// Has reports whether all bits of q are set.
func (f Flag) Has(q Flag) bool { return f&q == q }

// String renders the flags in mrouted/cisco-like letters.
func (f Flag) String() string {
	buf := make([]byte, 0, 5)
	if f.Has(FlagDense) {
		buf = append(buf, 'D')
	}
	if f.Has(FlagSparse) {
		buf = append(buf, 'S')
	}
	if f.Has(FlagPruned) {
		buf = append(buf, 'P')
	}
	if f.Has(FlagSPT) {
		buf = append(buf, 'T')
	}
	if f.Has(FlagRegister) {
		buf = append(buf, 'R')
	}
	if len(buf) == 0 {
		return "-"
	}
	return string(buf)
}

// Key identifies an (S,G) entry.
type Key struct {
	Source addr.IP
	Group  addr.IP
}

// Entry is one (S,G) forwarding cache entry.
type Entry struct {
	Key Key
	// IIF is the RPF link the entry accepts packets on; -1 for entries
	// at the first-hop router of the source.
	IIF int
	// OIFs are the outgoing link IDs currently forwarding.
	OIFs []int
	// Flags describe protocol provenance.
	Flags Flag
	// Packets and Bytes count forwarded traffic.
	Packets, Bytes uint64
	// RateKbps is an exponentially weighted estimate of current
	// bandwidth through the entry.
	RateKbps float64
	// Created is when the entry appeared; LastPacket when traffic last
	// flowed; LastRefresh when protocol state (re-flood, join) last
	// touched the entry.
	Created, LastPacket, LastRefresh time.Time
}

// Table is a router's forwarding cache.
type Table struct {
	router topo.NodeID
	// IdleTimeout expires entries with no traffic; mrouted keeps cache
	// entries for several minutes of idleness, sparse state persists as
	// long as joins refresh — the caller distinguishes by flags.
	IdleTimeout time.Duration
	entries     map[Key]*Entry
	// alpha is the EWMA smoothing factor for RateKbps.
	alpha float64
}

// NewTable returns an empty forwarding cache for router id.
func NewTable(id topo.NodeID, idle time.Duration) *Table {
	if idle <= 0 {
		idle = 2 * time.Hour
	}
	return &Table{router: id, IdleTimeout: idle, entries: make(map[Key]*Entry), alpha: 0.5}
}

// Router returns the owning router's ID.
func (t *Table) Router() topo.NodeID { return t.router }

// Upsert creates or updates the (S,G) entry's interface and flag state,
// preserving counters, and returns it. A nil oifs clears the OIF list.
func (t *Table) Upsert(k Key, iif int, oifs []int, flags Flag, now time.Time) *Entry {
	e := t.entries[k]
	if e == nil {
		e = &Entry{Key: k, Created: now}
		t.entries[k] = e
	}
	e.IIF = iif
	e.OIFs = append(e.OIFs[:0], oifs...)
	e.Flags = flags
	e.LastRefresh = now
	return e
}

// Account records traffic for the entry: bytes forwarded over the window
// dt ending at now. Missing entries are created implicitly (data-driven
// state, as flood-and-prune does).
func (t *Table) Account(k Key, bytes uint64, dt time.Duration, now time.Time) *Entry {
	e := t.entries[k]
	if e == nil {
		e = &Entry{Key: k, Created: now, IIF: -1, Flags: FlagDense}
		t.entries[k] = e
	}
	e.Packets += bytes/1400 + 1
	e.Bytes += bytes
	e.LastPacket = now
	inst := 0.0
	if dt > 0 {
		inst = float64(bytes) * 8 / dt.Seconds() / 1000
	}
	if e.RateKbps == 0 {
		e.RateKbps = inst
	} else {
		e.RateKbps = t.alpha*inst + (1-t.alpha)*e.RateKbps
	}
	return e
}

// DecayIdle applies rate decay to entries that saw no traffic in the
// window ending at now and removes expired ones. Sparse entries are kept
// while their joins persist (the caller removes them via Remove); dense
// entries expire after IdleTimeout without traffic.
func (t *Table) DecayIdle(now time.Time, dt time.Duration) (expired int) {
	for k, e := range t.entries {
		if e.LastPacket.Equal(now) {
			continue
		}
		e.RateKbps *= 1 - t.alpha
		if e.RateKbps < 0.01 {
			e.RateKbps = 0
		}
		idleSince := e.LastPacket
		if e.LastRefresh.After(idleSince) {
			idleSince = e.LastRefresh
		}
		if idleSince.IsZero() {
			idleSince = e.Created
		}
		if e.Flags.Has(FlagDense) && now.Sub(idleSince) > t.IdleTimeout {
			delete(t.entries, k)
			expired++
		}
	}
	return expired
}

// Remove deletes the entry for k, reporting whether it existed.
func (t *Table) Remove(k Key) bool {
	if _, ok := t.entries[k]; !ok {
		return false
	}
	delete(t.entries, k)
	return true
}

// RemoveIf deletes entries matching pred and returns how many were removed.
func (t *Table) RemoveIf(pred func(*Entry) bool) int {
	n := 0
	for k, e := range t.entries {
		if pred(e) {
			delete(t.entries, k)
			n++
		}
	}
	return n
}

// Get returns the entry for k, or nil.
func (t *Table) Get(k Key) *Entry { return t.entries[k] }

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns copies of all entries sorted by (group, source) — the
// order mrouted's cache dump uses.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		cp := *e
		cp.OIFs = append([]int(nil), e.OIFs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Group != out[j].Key.Group {
			return out[i].Key.Group < out[j].Key.Group
		}
		return out[i].Key.Source < out[j].Key.Source
	})
	return out
}

// Groups returns the distinct groups present in the table, sorted.
func (t *Table) Groups() []addr.IP {
	seen := make(map[addr.IP]bool)
	for k := range t.entries {
		seen[k.Group] = true
	}
	out := make([]addr.IP, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalRateKbps sums the bandwidth estimate across all entries — the
// router's multicast throughput, the quantity behind Figure 5 (left).
// The sum runs over sorted keys: float addition is not associative, so
// map-iteration order would leak into the reported figure's low bits.
func (t *Table) TotalRateKbps() float64 {
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Source != keys[j].Source {
			return keys[i].Source < keys[j].Source
		}
		return keys[i].Group < keys[j].Group
	})
	sum := 0.0
	for _, k := range keys {
		sum += t.entries[k].RateKbps
	}
	return sum
}
