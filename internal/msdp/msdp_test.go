package msdp

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/topo"
)

var (
	s1 = addr.MustParse("128.111.41.2")
	g1 = addr.MustParse("224.2.0.1")
	g2 = addr.MustParse("224.2.0.2")
)

// chainMesh builds RPs 0..n-1 peered in a chain.
func chainMesh(n int) (*Mesh, []topo.NodeID) {
	m := NewMesh(0)
	ids := make([]topo.NodeID, n)
	for i := range ids {
		ids[i] = topo.NodeID(i + 1)
		m.EnsureRP(ids[i])
	}
	for i := 0; i+1 < n; i++ {
		m.Peer(ids[i], ids[i+1])
	}
	return m, ids
}

func TestOriginateAndFlood(t *testing.T) {
	m, ids := chainMesh(4)
	now := sim.Epoch
	m.Originate(ids[0], s1, g1, now)
	m.Tick(now)
	for i, rp := range ids {
		c := m.Cache(rp)
		if len(c) != 1 {
			t.Fatalf("rp %d cache = %v", i, c)
		}
		if c[0].Source != s1 || c[0].Group != g1 || c[0].OriginRP != ids[0] {
			t.Errorf("rp %d entry = %+v", i, c[0])
		}
	}
	// Peer attribution: the tail learned from its chain predecessor.
	tail := m.Cache(ids[3])[0]
	if tail.Peer != ids[2] {
		t.Errorf("tail peer = %v", tail.Peer)
	}
}

func TestPeerRPFRejectsLongerPath(t *testing.T) {
	// Triangle: SAs reach each RP once; the rejected duplicate from the
	// longer side is counted.
	m, ids := chainMesh(3)
	m.Peer(ids[0], ids[2])
	now := sim.Epoch
	m.Originate(ids[0], s1, g1, now)
	m.Tick(now)
	for _, rp := range ids {
		if m.CacheSize(rp) != 1 {
			t.Fatalf("rp %v cache size = %d", rp, m.CacheSize(rp))
		}
	}
	if m.Stats().SARejected == 0 {
		t.Error("expected peer-RPF rejections on the triangle")
	}
}

func TestExpiryWithoutReorigination(t *testing.T) {
	m, ids := chainMesh(2)
	now := sim.Epoch
	m.Originate(ids[0], s1, g1, now)
	m.Tick(now)
	if m.CacheSize(ids[1]) != 1 {
		t.Fatal("flood failed")
	}
	m.StopOriginating(ids[0], s1, g1)
	// Advance past the SA lifetime without re-origination.
	now = now.Add(DefaultSALifetime + time.Hour)
	m.Tick(now)
	if m.CacheSize(ids[0]) != 0 || m.CacheSize(ids[1]) != 0 {
		t.Errorf("stale SA survived: %d, %d", m.CacheSize(ids[0]), m.CacheSize(ids[1]))
	}
	if m.Stats().SAExpired == 0 {
		t.Error("expiry not counted")
	}
}

func TestReoriginationKeepsAlive(t *testing.T) {
	m, ids := chainMesh(2)
	now := sim.Epoch
	m.Originate(ids[0], s1, g1, now)
	m.Tick(now)
	for i := 0; i < 5; i++ {
		now = now.Add(30 * time.Minute)
		m.Originate(ids[0], s1, g1, now)
		m.Tick(now)
	}
	if m.CacheSize(ids[1]) != 1 {
		t.Error("refreshed SA expired")
	}
	e := m.Cache(ids[1])[0]
	if !e.LastRefresh.Equal(now) {
		t.Errorf("LastRefresh = %v, want %v", e.LastRefresh, now)
	}
}

func TestSourcesFor(t *testing.T) {
	m, ids := chainMesh(2)
	now := sim.Epoch
	m.Originate(ids[0], s1, g1, now)
	m.Originate(ids[0], addr.MustParse("1.2.3.4"), g1, now)
	m.Originate(ids[0], s1, g2, now)
	m.Tick(now)
	srcs := m.SourcesFor(ids[1], g1)
	if len(srcs) != 2 {
		t.Errorf("SourcesFor = %v", srcs)
	}
	if len(m.SourcesFor(ids[1], addr.MustParse("224.9.9.9"))) != 0 {
		t.Error("unknown group should be empty")
	}
}

func TestRemoveRP(t *testing.T) {
	m, ids := chainMesh(3)
	now := sim.Epoch
	m.Originate(ids[0], s1, g1, now)
	m.Tick(now)
	m.RemoveRP(ids[1])
	if m.HasRP(ids[1]) {
		t.Error("RP still present")
	}
	if len(m.Peers(ids[0])) != 0 || len(m.Peers(ids[2])) != 0 {
		t.Error("peerings to removed RP remain")
	}
	// Origin keeps re-originating; the now-partitioned tail expires.
	now = now.Add(DefaultSALifetime + time.Hour)
	m.Originate(ids[0], s1, g1, now)
	m.Tick(now)
	if m.CacheSize(ids[2]) != 0 {
		t.Errorf("partitioned RP kept SA: %v", m.Cache(ids[2]))
	}
	if m.CacheSize(ids[0]) != 1 {
		t.Error("origin lost its own SA")
	}
}

func TestPeerDuplicateIgnored(t *testing.T) {
	m, ids := chainMesh(2)
	m.Peer(ids[0], ids[1])
	if len(m.Peers(ids[0])) != 1 {
		t.Errorf("duplicate peering: %v", m.Peers(ids[0]))
	}
	m.Peer(ids[0], topo.NodeID(99)) // unknown RP
	if len(m.Peers(ids[0])) != 1 {
		t.Error("peering with unknown RP accepted")
	}
}

func TestCacheSortedByGroupSource(t *testing.T) {
	m, ids := chainMesh(1)
	now := sim.Epoch
	m.Originate(ids[0], addr.MustParse("9.9.9.9"), g2, now)
	m.Originate(ids[0], s1, g1, now)
	m.Originate(ids[0], addr.MustParse("1.1.1.1"), g1, now)
	c := m.Cache(ids[0])
	if len(c) != 3 || c[0].Group != g1 || c[0].Source != addr.MustParse("1.1.1.1") || c[2].Group != g2 {
		t.Errorf("cache order: %+v", c)
	}
}

func TestFirstPreservedOnRefresh(t *testing.T) {
	m, ids := chainMesh(2)
	now := sim.Epoch
	m.Originate(ids[0], s1, g1, now)
	m.Tick(now)
	later := now.Add(time.Hour)
	m.Originate(ids[0], s1, g1, later)
	m.Tick(later)
	if e := m.Cache(ids[1])[0]; !e.First.Equal(now) {
		t.Errorf("First = %v, want %v", e.First, now)
	}
}
