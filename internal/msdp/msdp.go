// Package msdp implements the Multicast Source Discovery Protocol: RPs of
// sparse-mode domains peer with each other and flood Source-Active (SA)
// messages describing the active sources they know locally, so receivers
// in one domain can find sources in another.
//
// MSDP is the protocol the paper singles out as having no MIB at all —
// one reason Mantra scrapes router CLIs instead of using SNMP. The SA
// cache this package maintains is what that scrape observes.
package msdp

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/topo"
)

// DefaultSALifetime expires cached SA state that is not re-originated.
// RFC 3618 uses 6 minutes; scaled to cycle granularity here.
const DefaultSALifetime = 90 * time.Minute

// SAEntry is one cached source-active announcement.
type SAEntry struct {
	Source addr.IP
	Group  addr.IP
	// OriginRP is the RP that originated the SA.
	OriginRP topo.NodeID
	// Peer is the peer the SA arrived from; the origin itself caches
	// with Peer == OriginRP.
	Peer topo.NodeID
	// First is when the entry first appeared; LastRefresh the latest
	// re-origination.
	First, LastRefresh time.Time
}

type saKey struct {
	source addr.IP
	group  addr.IP
}

type rpState struct {
	id    topo.NodeID
	cache map[saKey]*SAEntry
	// local holds the (S,G)s this RP is currently originating.
	local map[saKey]bool
}

// Mesh is the MSDP peering mesh. Peerings are explicit (configuration,
// as in deployment) rather than derived from topology links.
type Mesh struct {
	Lifetime time.Duration
	rps      map[topo.NodeID]*rpState
	// peersOf lists each RP's configured peers.
	peersOf map[topo.NodeID][]topo.NodeID
	stats   Stats
}

// Stats aggregates protocol counters.
type Stats struct {
	// SAOriginated counts local originations, SAForwarded peer floods,
	// SARejected peer-RPF rejections, SAExpired cache expiries.
	SAOriginated, SAForwarded, SARejected, SAExpired uint64
}

// NewMesh returns an empty MSDP mesh.
func NewMesh(lifetime time.Duration) *Mesh {
	if lifetime <= 0 {
		lifetime = DefaultSALifetime
	}
	return &Mesh{
		Lifetime: lifetime,
		rps:      make(map[topo.NodeID]*rpState),
		peersOf:  make(map[topo.NodeID][]topo.NodeID),
	}
}

// Stats returns a copy of the counters.
func (m *Mesh) Stats() Stats { return m.stats }

// EnsureRP registers a rendezvous point.
func (m *Mesh) EnsureRP(id topo.NodeID) {
	if _, ok := m.rps[id]; ok {
		return
	}
	m.rps[id] = &rpState{id: id, cache: make(map[saKey]*SAEntry), local: make(map[saKey]bool)}
}

// HasRP reports whether id is a registered RP.
func (m *Mesh) HasRP(id topo.NodeID) bool {
	_, ok := m.rps[id]
	return ok
}

// Peer establishes a bidirectional peering between two RPs. Both must be
// registered. Duplicate peerings are ignored.
func (m *Mesh) Peer(a, b topo.NodeID) {
	if _, ok := m.rps[a]; !ok {
		return
	}
	if _, ok := m.rps[b]; !ok {
		return
	}
	for _, p := range m.peersOf[a] {
		if p == b {
			return
		}
	}
	m.peersOf[a] = append(m.peersOf[a], b)
	m.peersOf[b] = append(m.peersOf[b], a)
}

// RemoveRP withdraws an RP and its peerings; its SA state ages out of the
// other caches naturally.
func (m *Mesh) RemoveRP(id topo.NodeID) {
	delete(m.rps, id)
	delete(m.peersOf, id)
	for rp, peers := range m.peersOf {
		out := peers[:0]
		for _, p := range peers {
			if p != id {
				out = append(out, p)
			}
		}
		m.peersOf[rp] = out
	}
}

// Peers returns the configured peers of rp, sorted.
func (m *Mesh) Peers(rp topo.NodeID) []topo.NodeID {
	out := append([]topo.NodeID(nil), m.peersOf[rp]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Originate declares (source, group) active at the given RP: the RP
// caches it locally and will flood it during Tick. The caller must
// re-originate each cycle while the source remains active, as a real RP
// does on register reception; entries that stop being re-originated
// expire after the SA lifetime.
func (m *Mesh) Originate(rp topo.NodeID, source, group addr.IP, now time.Time) {
	st := m.rps[rp]
	if st == nil {
		return
	}
	k := saKey{source: source, group: group}
	st.local[k] = true
	e := st.cache[k]
	if e == nil {
		st.cache[k] = &SAEntry{Source: source, Group: group, OriginRP: rp, Peer: rp, First: now, LastRefresh: now}
		m.stats.SAOriginated++
		return
	}
	e.OriginRP = rp
	e.Peer = rp
	e.LastRefresh = now
}

// StopOriginating withdraws local origination; the state then expires from
// all caches after the SA lifetime, as in the real protocol (there is no
// explicit SA withdraw).
func (m *Mesh) StopOriginating(rp topo.NodeID, source, group addr.IP) {
	st := m.rps[rp]
	if st == nil {
		return
	}
	delete(st.local, saKey{source: source, group: group})
}

// peerRPFDistance computes hop counts from origin over the peering graph.
func (m *Mesh) peerRPFDistance(origin topo.NodeID) map[topo.NodeID]int {
	dist := map[topo.NodeID]int{origin: 0}
	queue := []topo.NodeID{origin}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range m.Peers(cur) {
			if _, seen := dist[p]; seen {
				continue
			}
			dist[p] = dist[cur] + 1
			queue = append(queue, p)
		}
	}
	return dist
}

// Tick floods SA state across the mesh and expires stale entries.
// Forwarding follows peer-RPF: an RP accepts an SA only from a peer on a
// shortest path toward the origin RP, which prevents flooding loops.
func (m *Mesh) Tick(now time.Time) {
	ids := make([]topo.NodeID, 0, len(m.rps))
	for id := range m.rps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Flood until stable: because accepts follow strictly increasing
	// RPF distance, rounds are bounded by mesh diameter.
	distCache := make(map[topo.NodeID]map[topo.NodeID]int)
	for round := 0; round < 16; round++ {
		changed := false
		for _, id := range ids {
			st := m.rps[id]
			for _, peerID := range m.Peers(id) {
				ps := m.rps[peerID]
				for k, e := range st.cache {
					if now.Sub(e.LastRefresh) > m.Lifetime {
						continue
					}
					dist := distCache[e.OriginRP]
					if dist == nil {
						dist = m.peerRPFDistance(e.OriginRP)
						distCache[e.OriginRP] = dist
					}
					// Peer-RPF check at the receiver: the sender must be
					// strictly closer to the origin RP.
					dSender, okS := dist[id]
					dRecv, okR := dist[peerID]
					if !okS || !okR || dSender >= dRecv {
						m.stats.SARejected++
						continue
					}
					pe := ps.cache[k]
					if pe == nil {
						ps.cache[k] = &SAEntry{
							Source: e.Source, Group: e.Group,
							OriginRP: e.OriginRP, Peer: id,
							First: now, LastRefresh: e.LastRefresh,
						}
						m.stats.SAForwarded++
						changed = true
						continue
					}
					if e.LastRefresh.After(pe.LastRefresh) {
						pe.LastRefresh = e.LastRefresh
						pe.Peer = id
						m.stats.SAForwarded++
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Expire cache entries (and their local-origination marks) that were
	// not re-originated within the SA lifetime.
	for _, id := range ids {
		st := m.rps[id]
		for k, e := range st.cache {
			if now.Sub(e.LastRefresh) > m.Lifetime {
				delete(st.cache, k)
				delete(st.local, k)
				m.stats.SAExpired++
			}
		}
	}
}

// Cache returns the RP's SA cache sorted by (group, source); copies.
func (m *Mesh) Cache(rp topo.NodeID) []SAEntry {
	st := m.rps[rp]
	if st == nil {
		return nil
	}
	out := make([]SAEntry, 0, len(st.cache))
	for _, e := range st.cache {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// CacheSize returns the number of cached SA entries at rp.
func (m *Mesh) CacheSize(rp topo.NodeID) int {
	st := m.rps[rp]
	if st == nil {
		return 0
	}
	return len(st.cache)
}

// HasSA reports whether rp's cache holds an SA for (source, group).
func (m *Mesh) HasSA(rp topo.NodeID, source, group addr.IP) bool {
	st := m.rps[rp]
	if st == nil {
		return false
	}
	_, ok := st.cache[saKey{source: source, group: group}]
	return ok
}

// SourcesFor returns the sources rp knows for group, sorted.
func (m *Mesh) SourcesFor(rp topo.NodeID, group addr.IP) []addr.IP {
	st := m.rps[rp]
	if st == nil {
		return nil
	}
	var out []addr.IP
	for k := range st.cache {
		if k.group == group {
			out = append(out, k.source)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
