// Fleet-scale benchmark for the sharded collector. One ~5k-router
// internetwork (48 leaf domains of 101 routers each, PIM-DM interiors
// behind DVMRP borders) is monitored at its 50 management targets —
// FIXW, the campus mrouted, and every domain border — by a shard
// supervisor at 1, 4 and 16 shards. The measured number is the full
// supervised fleet cycle: dispatch, per-shard collect/parse/process,
// fan-in merge and view publication. `make bench-scale` captures the
// series in BENCH_scale.json.
package mantra_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/shard"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// scaleDomains x (scaleRoutersPerDomain+1) leaf routers plus the native
// and exchange cores come to ~4.9k routers.
const (
	scaleDomains          = 48
	scaleRoutersPerDomain = 100
)

// newScaleNetwork builds the 5k-router simulation once per sub-benchmark.
// Background faults are disabled so every shard count measures identical
// collection work.
func newScaleNetwork(b *testing.B) (*netsim.Network, []string, int) {
	b.Helper()
	cfg := topo.ScaleInternetConfig(scaleDomains, scaleRoutersPerDomain)
	inet := topo.BuildInternet(cfg)
	routers := len(inet.Topo.Routers())
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	ncfg := netsim.DefaultConfig()
	ncfg.FlapPerDomainPerCycle = 0
	ncfg.RestartPerCycle = 0
	n := netsim.New(inet, wl, ncfg)

	targets := []string{"fixw", "ucsb-r1"}
	for d := 0; d < scaleDomains; d++ {
		targets = append(targets, fmt.Sprintf("dom%02d-gw", d))
	}
	if err := n.Track(targets...); err != nil {
		b.Fatal(err)
	}
	return n, targets, routers
}

// BenchmarkScaleCycle measures one supervised fleet cycle over the
// 5k-router topology at each shard count. Shards collect concurrently,
// so cycle latency should fall as shards rise until per-shard overhead
// (engine spin-up, fan-in merge) dominates; routers/cycle pins the
// topology size the run actually covered.
func BenchmarkScaleCycle(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		// "=" rather than "-": benchjson (and go tooling generally) treats
		// a trailing -N as the GOMAXPROCS suffix.
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			n, targets, routers := newScaleNetwork(b)
			s, err := shard.New(shard.Config{
				Shards: shards,
				Policy: collect.Policy{
					MaxAttempts:      2,
					BreakerThreshold: 1 << 20,
					BreakerCooldown:  90 * time.Minute,
					Sleep:            func(time.Duration) {},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for _, name := range targets {
				n.Router(name).Password = "pw"
				s.Register(collect.Target{
					Name:     name,
					Dialer:   collect.PipeDialer{Router: n.Router(name)},
					Password: "pw",
					Prompt:   name + "> ",
					Timeout:  5 * time.Second,
				})
			}

			// One warmup cycle so deltas and series exist before timing.
			n.Step()
			if _, err := s.RunCycle(n.Now()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
				res, err := s.RunCycle(n.Now())
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Blind) != 0 || len(res.Degraded) != 0 {
					b.Fatalf("degraded scale cycle: blind=%v degraded=%v", res.Blind, res.Degraded)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(routers), "routers")
			b.ReportMetric(float64(len(targets)), "targets")
			// Steady-state footprint after the measured cycles: how much
			// heap the fleet — series stores included — actually retains
			// at this shard count, not how much it allocated getting there.
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			b.ReportMetric(float64(ms.HeapAlloc), "heap-bytes")
		})
	}
}
