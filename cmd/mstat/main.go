// Command mstat is a one-shot query tool in the spirit of Merit's mstat:
// it logs into one router CLI, runs the given show commands (or the
// standard dump set), and prints the raw tables.
//
//	mstat -addr 127.0.0.1:2601 -password mantra -prompt "fixw> " \
//	      "show ip dvmrp route" "show ip mroute"
//
// With -daemon it is instead a thin wrapper over a running monitor's
// /query endpoint — the compressed long-horizon store — building the
// query from flags and printing the JSON answer verbatim:
//
//	mstat -daemon http://127.0.0.1:8080 -metric sa_cache_size -op avg
//	mstat -daemon http://127.0.0.1:8080 -metric mbgp_routes -op topk -k 3 -by max
//	mstat -daemon http://127.0.0.1:8080 -metric routes -target fixw \
//	      -from 2001-01-01T00:00:00Z -to 2001-01-08T00:00:00Z -tier 10
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/core/collect"
)

type targetFlags []string

func (t *targetFlags) String() string { return strings.Join(*t, ",") }
func (t *targetFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:2601", "router CLI address")
	password := flag.String("password", "mantra", "CLI password")
	prompt := flag.String("prompt", "", "CLI prompt (required, e.g. \"fixw> \")")
	timeout := flag.Duration("timeout", 10*time.Second, "per-command timeout")
	daemon := flag.String("daemon", "", "monitor base URL; query its store over /query instead of scraping a router")
	metric := flag.String("metric", "", "metric to query (with -daemon)")
	op := flag.String("op", "range", "query op: range, min, max, avg, sum, count, rate, topk (with -daemon)")
	var targets targetFlags
	flag.Var(&targets, "target", "target to query, repeatable; empty = all (with -daemon)")
	from := flag.String("from", "", "RFC3339 lower bound, inclusive (with -daemon)")
	to := flag.String("to", "", "RFC3339 upper bound, inclusive (with -daemon)")
	k := flag.Int("k", 0, "top-k size for -op topk (with -daemon)")
	by := flag.String("by", "", "top-k ranking aggregate: min, max, avg, sum, count, rate, last (with -daemon)")
	tier := flag.Int("tier", 0, "range resolution: 0 raw, 10 or 100 cycles per point (with -daemon)")
	flag.Parse()

	if *daemon != "" {
		queryDaemon(*daemon, *metric, *op, targets, *from, *to, *k, *by, *tier)
		return
	}

	if *prompt == "" {
		log.Fatal("mstat: -prompt is required (e.g. \"fixw> \")")
	}
	commands := flag.Args()
	if len(commands) == 0 {
		commands = collect.StandardCommands
	}

	tgt := collect.Target{
		Name:     "mstat",
		Dialer:   collect.TCPDialer{Addr: *addr},
		Password: *password,
		Prompt:   *prompt,
		Timeout:  *timeout,
	}
	dumps, err := collect.CollectAll(tgt, commands, time.Now().UTC()) //mantralint:allow wallclock composition root: one-shot live scrape stamped with real time
	if err != nil {
		log.Fatalf("mstat: %v", err)
	}
	for _, d := range dumps {
		fmt.Printf("### %s\n%s\n", d.Command, d.Raw)
	}
}

// queryDaemon builds the /query URL from the flags, issues the GET, and
// streams the daemon's JSON answer to stdout unmodified — the bytes are
// the daemon's deterministic query result, so this tool adds nothing.
func queryDaemon(base, metric, op string, targets []string, from, to string, k int, by string, tier int) {
	if metric == "" {
		log.Fatal("mstat: -metric is required with -daemon")
	}
	v := url.Values{}
	v.Set("metric", metric)
	v.Set("op", op)
	for _, t := range targets {
		v.Add("target", t)
	}
	if from != "" {
		v.Set("from", from)
	}
	if to != "" {
		v.Set("to", to)
	}
	if k > 0 {
		v.Set("k", fmt.Sprint(k))
	}
	if by != "" {
		v.Set("by", by)
	}
	if tier != 0 {
		v.Set("tier", fmt.Sprint(tier))
	}
	u := strings.TrimSuffix(base, "/") + "/query?" + v.Encode()
	resp, err := http.Get(u)
	if err != nil {
		log.Fatalf("mstat: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("mstat: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		log.Fatalf("mstat: %v", err)
	}
}
