// Command mstat is a one-shot query tool in the spirit of Merit's mstat:
// it logs into one router CLI, runs the given show commands (or the
// standard dump set), and prints the raw tables.
//
//	mstat -addr 127.0.0.1:2601 -password mantra -prompt "fixw> " \
//	      "show ip dvmrp route" "show ip mroute"
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core/collect"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:2601", "router CLI address")
	password := flag.String("password", "mantra", "CLI password")
	prompt := flag.String("prompt", "", "CLI prompt (required, e.g. \"fixw> \")")
	timeout := flag.Duration("timeout", 10*time.Second, "per-command timeout")
	flag.Parse()

	if *prompt == "" {
		log.Fatal("mstat: -prompt is required (e.g. \"fixw> \")")
	}
	commands := flag.Args()
	if len(commands) == 0 {
		commands = collect.StandardCommands
	}

	tgt := collect.Target{
		Name:     "mstat",
		Dialer:   collect.TCPDialer{Addr: *addr},
		Password: *password,
		Prompt:   *prompt,
		Timeout:  *timeout,
	}
	dumps, err := collect.CollectAll(tgt, commands, time.Now().UTC()) //mantralint:allow wallclock composition root: one-shot live scrape stamped with real time
	if err != nil {
		log.Fatalf("mstat: %v", err)
	}
	for _, d := range dumps {
		fmt.Printf("### %s\n%s\n", d.Command, d.Raw)
	}
}
