// Command mantralint runs the project's determinism, clock-injection,
// crash-safety and concurrency analyzers over every package in the
// module and exits non-zero on any finding.
//
//	mantralint ./...                        # whole module (the ./... is cosmetic)
//	mantralint -checks mapiter,walerr
//	mantralint -cache .mantralint-cache     # warm runs re-analyze changed packages only
//	mantralint -baseline lint-baseline.json # fail only on findings not in the baseline
//	mantralint -write-baseline lint-baseline.json
//	mantralint -json
//	mantralint -sarif mantralint.sarif ./...
//	mantralint -hotroots                    # print the //mantra:hotpath root set
//	mantralint -list
//
// Findings print as file:line:col: [check] message, with paths relative
// to the module root. -json replaces that with a JSON array on stdout;
// -sarif additionally writes a SARIF 2.1.0 log (GitHub code scanning's
// ingest format) to the named file regardless of the stdout format.
//
// -cache names a directory of per-package entries keyed by a content
// hash over each package's sources and its module-internal dependency
// closure; a warm run loads and re-analyzes only packages whose hash
// moved, and its findings are byte-identical to a cold run's. Delete the
// directory to force a full re-analysis.
//
// -baseline diffs the run against a committed findings snapshot
// (line-agnostic, multiset over file/check/message): only NEW findings
// print and fail the run, so legacy findings can be burned down without
// blocking unrelated changes. The SARIF log still carries the full
// finding list. -write-baseline snapshots the current findings and exits
// zero.
//
// A finding is silenced on its exact line by
//
//	//mantralint:allow <check> <reason>
//
// Exit codes are part of the tool's contract (CI and the Makefile key
// off them):
//
//	0  the lint ran and found nothing
//	1  the lint ran and reported findings (after baseline subtraction)
//	2  the lint itself failed: bad flags, unknown check names, module
//	   load errors, or unwritable output files
//
// See DESIGN.md §8–§9, §14 and §15 for the invariants each check
// encodes and when a suppression is legitimate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// Exit codes; run returns them rather than calling os.Exit so tests can
// drive the whole CLI in-process.
const (
	exitClean    = 0 // ran, no findings
	exitFindings = 1 // ran, findings reported
	exitError    = 2 // the lint itself failed (flags, load, output I/O)
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mantralint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dir := fs.String("dir", ".", "directory inside the module to lint")
	list := fs.Bool("list", false, "list registered checks and exit")
	debug := fs.Bool("debug", false, "print type-check diagnostics (analysis is best-effort under them; disables -cache)")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array instead of text")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	cacheDir := fs.String("cache", "", "per-package finding/fact cache directory (empty: no cache)")
	baselinePath := fs.String("baseline", "", "fail only on findings absent from this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	hotroots := fs.Bool("hotroots", false, "print the //mantra:hotpath root set and exit")
	stats := fs.Bool("stats", false, "report package/cache-hit counts to stderr")
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "mantralint:", err)
		return exitError
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			return fail(err)
		}
	}

	mod, err := lint.NewModule(*dir)
	if err != nil {
		return fail(err)
	}
	cache := *cacheDir
	if *debug {
		// Diagnostics come from freshly loaded packages; a warm cache would
		// hide them. Debug runs are always cold.
		cache = ""
	}
	d := &lint.Driver{Mod: mod, CacheDir: cache, Analyzers: analyzers}
	res, err := d.Run()
	if err != nil {
		return fail(err)
	}
	if *debug {
		for _, p := range mod.Loaded() {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(stderr, "mantralint: typecheck %s: %v\n", p.RelPath, te)
			}
		}
	}
	if *debug || *stats {
		fmt.Fprintf(stderr, "mantralint: %d package(s), %d cached, %d re-analyzed\n",
			res.Stats.Packages, res.Stats.CacheHits, res.Stats.Reanalyzed)
	}

	if *hotroots {
		for _, r := range res.HotRoots {
			fmt.Fprintln(stdout, r)
		}
		return exitClean
	}

	findings := res.Findings

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			return fail(err)
		}
		werr := lint.WriteJSON(f, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fail(werr)
		}
		fmt.Fprintf(stderr, "mantralint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return exitClean
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			return fail(err)
		}
		werr := lint.WriteSARIF(f, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fail(fmt.Errorf("sarif: %w", werr))
		}
	}

	if *baselinePath != "" {
		bf, err := os.Open(*baselinePath)
		if err != nil {
			return fail(err)
		}
		baseline, err := lint.ReadBaseline(bf)
		bf.Close()
		if err != nil {
			return fail(fmt.Errorf("baseline: %w", err))
		}
		newFindings, resolved := lint.DiffBaseline(findings, baseline)
		if len(resolved) > 0 {
			fmt.Fprintf(stderr, "mantralint: %d baseline finding(s) resolved — shrink the baseline\n", len(resolved))
		}
		findings = newFindings
	}

	if *jsonOut {
		if err := lint.WriteJSON(stdout, findings); err != nil {
			return fail(fmt.Errorf("json: %w", err))
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		kind := "finding(s)"
		if *baselinePath != "" {
			kind = "new finding(s) not in baseline"
		}
		fmt.Fprintf(stderr, "mantralint: %d %s\n", len(findings), kind)
		return exitFindings
	}
	return exitClean
}
