// Command mantralint runs the project's determinism, clock-injection,
// crash-safety and concurrency analyzers over every package in the
// module and exits non-zero on any finding.
//
//	mantralint ./...                        # whole module (the ./... is cosmetic)
//	mantralint -checks mapiter,walerr
//	mantralint -cache .mantralint-cache     # warm runs re-analyze changed packages only
//	mantralint -baseline lint-baseline.json # fail only on findings not in the baseline
//	mantralint -write-baseline lint-baseline.json
//	mantralint -json
//	mantralint -sarif mantralint.sarif ./...
//	mantralint -hotroots                    # print the //mantra:hotpath root set
//	mantralint -list
//
// Findings print as file:line:col: [check] message, with paths relative
// to the module root. -json replaces that with a JSON array on stdout;
// -sarif additionally writes a SARIF 2.1.0 log (GitHub code scanning's
// ingest format) to the named file regardless of the stdout format.
//
// -cache names a directory of per-package entries keyed by a content
// hash over each package's sources and its module-internal dependency
// closure; a warm run loads and re-analyzes only packages whose hash
// moved, and its findings are byte-identical to a cold run's. Delete the
// directory to force a full re-analysis.
//
// -baseline diffs the run against a committed findings snapshot
// (line-agnostic, multiset over file/check/message): only NEW findings
// print and fail the run, so legacy findings can be burned down without
// blocking unrelated changes. The SARIF log still carries the full
// finding list. -write-baseline snapshots the current findings and exits
// zero.
//
// A finding is silenced on its exact line by
//
//	//mantralint:allow <check> <reason>
//
// See DESIGN.md §8–§9 and §14 for the invariants each check encodes and
// when a suppression is legitimate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dir := flag.String("dir", ".", "directory inside the module to lint")
	list := flag.Bool("list", false, "list registered checks and exit")
	debug := flag.Bool("debug", false, "print type-check diagnostics (analysis is best-effort under them; disables -cache)")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array instead of text")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	cacheDir := flag.String("cache", "", "per-package finding/fact cache directory (empty: no cache)")
	baselinePath := flag.String("baseline", "", "fail only on findings absent from this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	hotroots := flag.Bool("hotroots", false, "print the //mantra:hotpath root set and exit")
	stats := flag.Bool("stats", false, "report package/cache-hit counts to stderr")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			fail(err)
		}
	}

	mod, err := lint.NewModule(*dir)
	if err != nil {
		fail(err)
	}
	cache := *cacheDir
	if *debug {
		// Diagnostics come from freshly loaded packages; a warm cache would
		// hide them. Debug runs are always cold.
		cache = ""
	}
	d := &lint.Driver{Mod: mod, CacheDir: cache, Analyzers: analyzers}
	res, err := d.Run()
	if err != nil {
		fail(err)
	}
	if *debug {
		for _, p := range mod.Loaded() {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "mantralint: typecheck %s: %v\n", p.RelPath, te)
			}
		}
	}
	if *debug || *stats {
		fmt.Fprintf(os.Stderr, "mantralint: %d package(s), %d cached, %d re-analyzed\n",
			res.Stats.Packages, res.Stats.CacheHits, res.Stats.Reanalyzed)
	}

	if *hotroots {
		for _, r := range res.HotRoots {
			fmt.Println(r)
		}
		return
	}

	findings := res.Findings

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fail(err)
		}
		werr := lint.WriteJSON(f, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fail(werr)
		}
		fmt.Fprintf(os.Stderr, "mantralint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fail(err)
		}
		werr := lint.WriteSARIF(f, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fail(fmt.Errorf("sarif: %w", werr))
		}
	}

	if *baselinePath != "" {
		bf, err := os.Open(*baselinePath)
		if err != nil {
			fail(err)
		}
		baseline, err := lint.ReadBaseline(bf)
		bf.Close()
		if err != nil {
			fail(fmt.Errorf("baseline: %w", err))
		}
		newFindings, resolved := lint.DiffBaseline(findings, baseline)
		if len(resolved) > 0 {
			fmt.Fprintf(os.Stderr, "mantralint: %d baseline finding(s) resolved — shrink the baseline\n", len(resolved))
		}
		findings = newFindings
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fail(fmt.Errorf("json: %w", err))
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		kind := "finding(s)"
		if *baselinePath != "" {
			kind = "new finding(s) not in baseline"
		}
		fmt.Fprintf(os.Stderr, "mantralint: %d %s\n", len(findings), kind)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mantralint:", err)
	os.Exit(2)
}
