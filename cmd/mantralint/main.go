// Command mantralint runs the project's determinism, clock-injection and
// crash-safety analyzers over every package in the module and exits
// non-zero on any finding.
//
//	mantralint ./...              # whole module (the ./... is cosmetic)
//	mantralint -checks mapiter,walerr
//	mantralint -json
//	mantralint -sarif mantralint.sarif ./...
//	mantralint -list
//
// Findings print as file:line:col: [check] message, with paths relative
// to the module root. -json replaces that with a JSON array on stdout;
// -sarif additionally writes a SARIF 2.1.0 log (GitHub code scanning's
// ingest format) to the named file regardless of the stdout format.
// A finding is silenced on its exact line by
//
//	//mantralint:allow <check> <reason>
//
// See DESIGN.md §8–§9 for the invariants each check encodes and when a
// suppression is legitimate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dir := flag.String("dir", ".", "directory inside the module to lint")
	list := flag.Bool("list", false, "list registered checks and exit")
	debug := flag.Bool("debug", false, "print type-check diagnostics (analysis is best-effort under them)")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array instead of text")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mantralint:", err)
			os.Exit(2)
		}
	}

	mod, err := lint.NewModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mantralint:", err)
		os.Exit(2)
	}
	pkgs, err := mod.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mantralint:", err)
		os.Exit(2)
	}
	if *debug {
		for _, p := range pkgs {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "mantralint: typecheck %s: %v\n", p.RelPath, te)
			}
		}
	}

	findings := lint.RunAnalyzers(pkgs, analyzers)
	for i := range findings {
		if rel, err := filepath.Rel(mod.Root, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mantralint:", err)
			os.Exit(2)
		}
		werr := lint.WriteSARIF(f, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "mantralint: sarif:", werr)
			os.Exit(2)
		}
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "mantralint: json:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mantralint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
