// Command mantralint runs the project's determinism, clock-injection and
// crash-safety analyzers over every package in the module and exits
// non-zero on any finding.
//
//	mantralint ./...              # whole module (the ./... is cosmetic)
//	mantralint -checks mapiter,walerr
//	mantralint -list
//
// Findings print as file:line:col: [check] message, with paths relative
// to the module root. A finding is silenced on its exact line by
//
//	//mantralint:allow <check> <reason>
//
// See DESIGN.md §8 for the invariants each check encodes and when a
// suppression is legitimate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dir := flag.String("dir", ".", "directory inside the module to lint")
	list := flag.Bool("list", false, "list registered checks and exit")
	debug := flag.Bool("debug", false, "print type-check diagnostics (analysis is best-effort under them)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mantralint:", err)
			os.Exit(2)
		}
	}

	mod, err := lint.NewModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mantralint:", err)
		os.Exit(2)
	}
	pkgs, err := mod.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mantralint:", err)
		os.Exit(2)
	}
	if *debug {
		for _, p := range pkgs {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "mantralint: typecheck %s: %v\n", p.RelPath, te)
			}
		}
	}

	findings := lint.RunAnalyzers(pkgs, analyzers)
	for _, f := range findings {
		if rel, err := filepath.Rel(mod.Root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mantralint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
