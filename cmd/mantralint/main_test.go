package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The exit-code contract is CI-facing: the Makefile treats 1 as "fix
// your code" and 2 as "fix the lint invocation". Each code is pinned
// here by driving run() in-process over a throwaway module.

const exitTestGoMod = "module exittest\n\ngo 1.21\n"

const exitTestClean = `package a

func Add(a, b int) int { return a + b }
`

// exitTestDirty reproduces the minimal hotalloc shape: a hot root
// reaching an allocating fmt call.
const exitTestDirty = `package a

import "fmt"

func render(n int) string { return fmt.Sprintf("%d", n) }

//mantra:hotpath
func Cycle() string { return render(1) }
`

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanIsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": exitTestGoMod,
		"a/a.go": exitTestClean,
	})
	code, out, errb := runCLI(t, "-dir", dir)
	if code != exitClean {
		t.Fatalf("clean module: exit %d (stdout %q, stderr %q)", code, out, errb)
	}
	if out != "" {
		t.Fatalf("clean module printed findings: %q", out)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": exitTestGoMod,
		"a/a.go": exitTestDirty,
	})
	code, out, errb := runCLI(t, "-dir", dir)
	if code != exitFindings {
		t.Fatalf("dirty module: exit %d (stdout %q, stderr %q)", code, out, errb)
	}
	if !strings.Contains(out, "hotalloc") {
		t.Fatalf("findings not printed to stdout: %q", out)
	}
	if !strings.Contains(errb, "finding(s)") {
		t.Fatalf("summary not printed to stderr: %q", errb)
	}
}

func TestExitInternalErrorIsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module")
	}
	// Not a module at all: load error.
	empty := t.TempDir()
	if code, _, errb := runCLI(t, "-dir", empty); code != exitError {
		t.Fatalf("no go.mod: exit %d (stderr %q)", code, errb)
	}

	// Unknown check name: flag-level misuse, no module load needed.
	dir := writeModule(t, map[string]string{
		"go.mod": exitTestGoMod,
		"a/a.go": exitTestClean,
	})
	if code, _, errb := runCLI(t, "-dir", dir, "-checks", "nosuchcheck"); code != exitError {
		t.Fatalf("unknown check: exit %d (stderr %q)", code, errb)
	}

	// Malformed flag: the flag set itself rejects the invocation.
	if code, _, _ := runCLI(t, "-definitely-not-a-flag"); code != exitError {
		t.Fatalf("bad flag: exit %d", code)
	}
}

// -list and -hotroots are informational: always 0, even when the tree
// has findings.
func TestInformationalModesExitZero(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != exitClean {
		t.Fatalf("-list: exit %d", code)
	}
	if !strings.Contains(out, "codecsym") || !strings.Contains(out, "sertaint") {
		t.Fatalf("-list output missing v4 checks: %q", out)
	}
	if testing.Short() {
		return
	}
	dir := writeModule(t, map[string]string{
		"go.mod": exitTestGoMod,
		"a/a.go": exitTestDirty,
	})
	if code, _, _ := runCLI(t, "-dir", dir, "-hotroots"); code != exitClean {
		t.Fatalf("-hotroots on dirty tree: exit %d", code)
	}
}
