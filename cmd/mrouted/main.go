// Command mrouted runs a simulated multicast internetwork and serves the
// routers' CLIs over TCP, playing the role of the live routers Mantra
// logged into. Each named router gets a telnet-style endpoint; the
// simulation advances in real time (one monitoring cycle of virtual time
// per -tick of wall time).
//
// Typical use, paired with cmd/mantra:
//
//	mrouted -listen 127.0.0.1:2601=fixw -listen 127.0.0.1:2602=ucsb-r1 &
//	mantra -target fixw=127.0.0.1:2601 -target ucsb-r1=127.0.0.1:2602
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/snmp"
	"repro/internal/topo"
	"repro/internal/workload"
)

type listenFlags []string

func (l *listenFlags) String() string { return strings.Join(*l, ",") }
func (l *listenFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var listens listenFlags
	flag.Var(&listens, "listen", "addr=router pair, e.g. 127.0.0.1:2601=fixw (repeatable)")
	domains := flag.Int("domains", 8, "number of leaf domains besides ucsb")
	password := flag.String("password", "mantra", "CLI password for every router")
	community := flag.String("community", "public", "SNMP community string")
	snmpBase := flag.Int("snmp", 0, "base UDP port for per-router SNMP agents (0 disables)")
	tick := flag.Duration("tick", 2*time.Second, "wall-clock time per simulated monitoring cycle")
	cycle := flag.Duration("cycle", 30*time.Minute, "simulated monitoring cycle length")
	seed := flag.Int64("seed", 1998, "simulation seed")
	flag.Parse()

	if len(listens) == 0 {
		listens = listenFlags{"127.0.0.1:2601=fixw", "127.0.0.1:2602=ucsb-r1"}
	}

	tcfg := topo.DefaultInternetConfig()
	tcfg.NumDomains = *domains
	tcfg.Seed = *seed
	inet := topo.BuildInternet(tcfg)
	wcfg := workload.DefaultConfig()
	wcfg.Seed = *seed + 7
	wl := workload.New(wcfg, inet.Topo)
	ncfg := netsim.DefaultConfig()
	ncfg.Cycle = *cycle
	ncfg.Seed = *seed + 13
	net_ := netsim.New(inet, wl, ncfg)

	type served struct {
		name  string
		agent *snmp.Agent
	}
	var agents []served
	for i, spec := range listens {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("mrouted: bad -listen %q (want addr=router)", spec)
		}
		addr, name := parts[0], parts[1]
		r := net_.Router(name)
		if r == nil {
			log.Fatalf("mrouted: unknown router %q", name)
		}
		if err := net_.Track(name); err != nil {
			log.Fatal(err)
		}
		r.Password = *password
		l, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("mrouted: listen %s: %v", addr, err)
		}
		fmt.Printf("mrouted: %s CLI on %s (password %q, prompt %q)\n", name, l.Addr(), *password, name+"> ")
		go func(rt interface {
			ServeTCP(net.Listener) error
		}, l net.Listener) {
			if err := rt.ServeTCP(l); err != nil {
				log.Printf("mrouted: serve: %v", err)
			}
		}(r, l)

		if *snmpBase > 0 {
			agent := snmp.NewAgent(*community)
			pc, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", *snmpBase+i))
			if err != nil {
				log.Fatalf("mrouted: snmp listen: %v", err)
			}
			fmt.Printf("mrouted: %s SNMP on %s (community %q)\n", name, pc.LocalAddr(), *community)
			go func() { _ = agent.ServeUDP(pc) }()
			agents = append(agents, served{name: name, agent: agent})
		}
	}

	fmt.Printf("mrouted: %d routers, %d links; advancing %v of virtual time every %v\n",
		len(inet.Topo.Routers()), len(inet.Topo.Links()), *cycle, *tick)
	for {
		net_.Step()
		for _, s := range agents {
			s.agent.SetView(snmp.BuildView(net_.Router(s.name), net_.Now()))
		}
		fmt.Fprintf(os.Stderr, "mrouted: %s fixw-routes=%d fixw-mroutes=%d sessions=%d\r",
			net_.Now().Format("2006-01-02 15:04"),
			net_.DVMRP.RouteCount(inet.FIXW.ID),
			net_.Router("fixw").FWD.Len(),
			wl.SessionCount())
		time.Sleep(*tick)
	}
}
