// Command mantra is the monitoring daemon: it polls the configured router
// CLIs on an interval, processes the dumps through the full Mantra
// pipeline, and serves results over HTTP — the paper's web-based output
// interface.
//
//	mantra -target fixw=127.0.0.1:2601 -target ucsb-r1=127.0.0.1:2602 \
//	       -password mantra -interval 2s -http 127.0.0.1:8080
//
// Collection is resilient: each target gets per-cycle retries with
// backoff, a circuit breaker that opens after repeated failed cycles, and
// structural dump validation. A failing target degrades the cycle instead
// of aborting it; per-target health is printed each cycle and served at
// /health. With -max-consecutive-failures N the daemon exits non-zero
// once every target is breaker-open with at least N consecutive failures,
// so a fully dead deployment fails loudly instead of spinning.
//
// With -data-dir the archive is durable: every delta and gap marker goes
// to a checksummed write-ahead log with periodic full-state checkpoints,
// and a restart recovers the series, tables and health ledger to their
// pre-crash values (at most the final partial record is lost).
//
// With -concurrent, collection runs through the pipelined cycle engine
// on a bounded worker pool (-concurrency N, default min(8, targets));
// -stats prints the engine's per-stage timings each cycle, and the same
// instrumentation is served at /stats.
//
// Detected anomalies (route injection, RP loss, SA storms, route leaks,
// route flapping) are logged once when they open and once when they
// resolve, and served with full episode state at /anomalies;
// -max-anomalies caps the retained episode ring.
//
// With -shards N (N > 1), collection runs through the fault-tolerant
// shard supervisor instead of the single monitor: targets are
// consistent-hash-assigned across N supervised shard workers, each with
// its own WAL under -data-dir/shard-NN, and the merged fleet view is
// what the HTTP endpoints serve. A shard that crashes or stops
// heartbeating (-shard-heartbeat, measured in cycle time) is declared
// dead at the next cycle boundary; its targets hand off to the
// survivors with their health ledger, breaker state and open anomaly
// episodes intact, and the shard restarts under bounded backoff.
// Per-shard liveness, assignment and handoff counts are served at
// /shards.
//
// With -series-retain N the in-memory hot rings are bounded to the
// newest N points; the compressed long-horizon store keeps full history
// and backs /query and the ranged form of /series either way.
//
// Endpoints: /  /series/<target>/<metric>[?from=&to=&limit=]
// /graph/<target>/<metric>  /tables/<name>  /anomalies  /health
// /archive  /stats  /shards  /query?metric=&op=&target=&from=&to=&k=&by=&tier=
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/core/output"
	"repro/internal/core/process"
	"repro/internal/core/shard"
)

type targetFlags []string

func (t *targetFlags) String() string { return strings.Join(*t, ",") }
func (t *targetFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var targets targetFlags
	flag.Var(&targets, "target", "name=addr pair, e.g. fixw=127.0.0.1:2601 (repeatable)")
	password := flag.String("password", "mantra", "CLI password")
	interval := flag.Duration("interval", 5*time.Second, "polling interval (wall clock)")
	httpAddr := flag.String("http", "127.0.0.1:8080", "HTTP address serving results")
	cycles := flag.Int("cycles", 0, "stop after N cycles (0 = run forever)")
	concurrent := flag.Bool("concurrent", false, "collect targets on a bounded worker pool")
	concurrency := flag.Int("concurrency", 0, "collection worker pool size with -concurrent (0 = min(8, targets))")
	showStats := flag.Bool("stats", false, "print per-cycle engine stage timings")
	aggregate := flag.Bool("aggregate", false, "publish a combined multi-router view (implies -concurrent)")
	retries := flag.Int("retries", 3, "collection attempts per target per cycle")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "backoff before the first retry (doubles per retry)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failed cycles before a target's circuit breaker opens")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Minute, "how long an open breaker waits before a half-open probe")
	maxConsecFail := flag.Int("max-consecutive-failures", 0, "exit non-zero once every target is breaker-open with at least this many consecutive failures (0 disables)")
	showHealth := flag.Bool("health", true, "print per-target collection health each cycle")
	dataDir := flag.String("data-dir", "", "durable archive directory; empty disables archival")
	checkpointEvery := flag.Int("checkpoint-every", 12, "cycles between full-state checkpoints")
	resume := flag.Bool("resume", true, "recover existing archive data on start (with -data-dir)")
	archiveSync := flag.Bool("archive-sync", false, "fsync the archive after every record (durable to the last cycle, slower)")
	maxAnomalies := flag.Int("max-anomalies", 0, "cap on retained anomaly episodes, oldest resolved evicted first (0 = default cap)")
	shards := flag.Int("shards", 1, "shard worker count; >1 runs the fault-tolerant shard supervisor")
	shardHeartbeat := flag.Duration("shard-heartbeat", 0, "declare a shard dead when its last completed cycle is older than this (cycle time; 0 = crash detection only)")
	seriesRetain := flag.Int("series-retain", 0, "bound the in-memory hot series rings to the newest N points; the compressed store retains full history (0 = unbounded rings)")
	flag.Parse()

	if len(targets) == 0 {
		targets = targetFlags{"fixw=127.0.0.1:2601", "ucsb-r1=127.0.0.1:2602"}
	}

	if *shards > 1 {
		runSharded(shardedConfig{
			targets:  targets,
			password: *password,
			interval: *interval,
			httpAddr: *httpAddr,
			cycles:   *cycles,
			cfg: shard.Config{
				Shards:           *shards,
				HeartbeatTimeout: *shardHeartbeat,
				Policy: collect.Policy{
					MaxAttempts:      *retries,
					BaseDelay:        *retryBase,
					BreakerThreshold: *breakerThreshold,
					BreakerCooldown:  *breakerCooldown,
				},
				Concurrency:     *concurrency,
				MaxAnomalies:    *maxAnomalies,
				SeriesRetain:    *seriesRetain,
				DataDir:         *dataDir,
				SyncEveryAppend: *archiveSync,
			},
			showHealth: *showHealth,
		})
		return
	}

	m := mantra.New()
	m.SetCollectPolicy(collect.Policy{
		MaxAttempts:      *retries,
		BaseDelay:        *retryBase,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	if *aggregate {
		m.EnableAggregation()
		*concurrent = true
	}
	if *maxAnomalies > 0 {
		m.SetMaxAnomalies(*maxAnomalies)
	}
	if *seriesRetain > 0 {
		m.SetSeriesRetain(*seriesRetain)
	}
	if *concurrency > 0 {
		m.SetConcurrency(*concurrency)
	}
	for _, spec := range targets {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("mantra: bad -target %q (want name=addr)", spec)
		}
		m.AddTarget(mantra.Target{
			Name:     parts[0],
			Dialer:   collect.TCPDialer{Addr: parts[1]},
			Password: *password,
			Prompt:   parts[0] + "> ",
			Timeout:  10 * time.Second,
		})
	}

	if *dataDir != "" {
		report, err := m.EnableArchive(mantra.ArchiveConfig{
			Dir:             *dataDir,
			CheckpointEvery: *checkpointEvery,
			SyncEveryAppend: *archiveSync,
			Resume:          *resume,
		})
		if err != nil {
			log.Fatalf("mantra: archive: %v", err)
		}
		if report.Resumed {
			log.Printf("mantra: archive resumed from %s: %d targets, %d cycles + %d gaps replayed after checkpoint %s",
				*dataDir, len(report.Targets), report.CyclesReplayed, report.GapsReplayed,
				report.CheckpointAt.Format(time.RFC3339))
			if report.Stats.TornTail {
				log.Printf("mantra: archive tail repaired: %s (%d bytes discarded)",
					report.Stats.TailError, report.Stats.TruncatedBytes)
			}
			if report.Stats.CorruptCheckpoints > 0 {
				log.Printf("mantra: archive skipped %d corrupt checkpoint(s)", report.Stats.CorruptCheckpoints)
			}
		} else {
			log.Printf("mantra: archiving to %s (checkpoint every %d cycles)", *dataDir, *checkpointEvery)
		}
	}

	go func() {
		log.Printf("mantra: serving results on http://%s/", *httpAddr)
		if err := http.ListenAndServe(*httpAddr, m.Handler()); err != nil {
			log.Fatalf("mantra: http: %v", err)
		}
	}()

	lastAnomalyID := -1
	resolvedPrinted := make(map[int]bool)
	for i := 0; *cycles == 0 || i < *cycles; i++ {
		now := time.Now().UTC() //mantralint:allow wallclock composition root: live monitoring stamps cycles with real time and injects it downward
		var stats []mantra.CycleStats
		var err error
		if *concurrent {
			stats, err = m.RunCycleConcurrent(now)
		} else {
			stats, err = m.RunCycle(now)
		}
		if err != nil {
			log.Printf("mantra: cycle degraded: %v", err)
		}
		for _, st := range stats {
			fmt.Printf("%s %-10s sessions=%-5d participants=%-5d active=%-4d senders=%-4d bw=%.0fkbps routes=%d churn=%d\n",
				now.Format("15:04:05"), st.Target, st.Sessions, st.Participants,
				st.ActiveSessions, st.Senders, st.BandwidthKbps, st.Routes, st.RouteChurn)
		}
		if *showStats {
			if rep := m.LastCycleReport(); rep != nil {
				fmt.Printf("%s engine cycle=%d workers=%d targets=%d failed=%d wall=%s queue_peak=%d collect=%s normalize=%s log=%s ingest=%s publish=%s\n",
					now.Format("15:04:05"), rep.Cycle, rep.Concurrency, rep.Targets, rep.Failed,
					rep.Wall().Round(time.Microsecond), rep.MaxQueueDepth,
					rep.StageTotal("collect").Round(time.Microsecond),
					rep.StageTotal("normalize").Round(time.Microsecond),
					rep.StageTotal("log").Round(time.Microsecond),
					rep.StageTotal("ingest").Round(time.Microsecond),
					rep.StageTotal("publish").Round(time.Microsecond))
			}
		}
		health := m.Health()
		if *showHealth {
			for _, h := range health {
				last := "never"
				if !h.LastSuccess.IsZero() {
					last = h.LastSuccess.Format("15:04:05")
				}
				line := fmt.Sprintf("%s %-10s health breaker=%-9s consecutive_failures=%-3d last_success=%s",
					now.Format("15:04:05"), h.Target, h.Breaker, h.ConsecutiveFailures, last)
				if h.LastError != "" {
					line += " last_error=" + h.LastError
				}
				fmt.Println(line)
			}
		}
		if *maxConsecFail > 0 && allBreakerOpen(health, *maxConsecFail) {
			log.Printf("mantra: every target is breaker-open with >=%d consecutive failures; giving up", *maxConsecFail)
			if err := m.CloseArchive(now); err != nil {
				log.Printf("mantra: archive close: %v", err)
			}
			os.Exit(1)
		}
		// Anomalies are episodes, not events: print each once when it
		// opens and once when it resolves, rather than re-logging every
		// open episode every cycle.
		for _, a := range m.Anomalies() {
			if a.ID > lastAnomalyID {
				lastAnomalyID = a.ID
				log.Printf("mantra: ANOMALY #%d %s %s at %s: %s", a.ID, a.Severity, a.Kind, a.Target, a.Detail)
			}
			if a.Resolved && !resolvedPrinted[a.ID] {
				resolvedPrinted[a.ID] = true
				log.Printf("mantra: RESOLVED #%d %s at %s after %s", a.ID, a.Kind, a.Target, a.ResolvedAt.Sub(a.At))
			}
		}
		time.Sleep(*interval)
	}
	if err := m.CloseArchive(time.Now().UTC()); err != nil { //mantralint:allow wallclock composition root: final checkpoint stamped with real time
		log.Fatalf("mantra: archive close: %v", err)
	}
}

// shardedConfig carries the flag set into the sharded daemon loop.
type shardedConfig struct {
	targets    targetFlags
	password   string
	interval   time.Duration
	httpAddr   string
	cycles     int
	cfg        shard.Config
	showHealth bool
}

// runSharded is the -shards N daemon loop: the shard supervisor drives
// collection, and the HTTP server publishes the merged fleet views —
// the fleet series, the re-keyed fleet anomaly log, per-target health
// with gap counts, and the /shards supervisor status.
func runSharded(sc shardedConfig) {
	s, err := shard.New(sc.cfg)
	if err != nil {
		log.Fatalf("mantra: shards: %v", err)
	}
	defer s.Close()
	for _, spec := range sc.targets {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("mantra: bad -target %q (want name=addr)", spec)
		}
		s.Register(collect.Target{
			Name:     parts[0],
			Dialer:   collect.TCPDialer{Addr: parts[1]},
			Password: sc.password,
			Prompt:   parts[0] + "> ",
			Timeout:  10 * time.Second,
		})
	}

	srv := output.NewServer(s.FleetProc())
	srv.SetShards(func() any { return s.Status() })
	srv.SetHealth(func() any { return s.FleetHealth() })
	srv.SetAnomalies(func() []process.Anomaly { return s.FleetAnomalies() })
	srv.SetSeries(s.SeriesView)
	srv.SetQuery(s.QueryFleet)
	go func() {
		log.Printf("mantra: serving fleet results on http://%s/ (%d shards)", sc.httpAddr, sc.cfg.Shards)
		if err := http.ListenAndServe(sc.httpAddr, srv); err != nil {
			log.Fatalf("mantra: http: %v", err)
		}
	}()

	lastAnomalyID := 0
	resolvedPrinted := make(map[int]bool)
	for i := 0; sc.cycles == 0 || i < sc.cycles; i++ {
		now := time.Now().UTC() //mantralint:allow wallclock composition root: live monitoring stamps cycles with real time and injects it downward
		res, err := s.RunCycle(now)
		if err != nil {
			log.Fatalf("mantra: shard cycle: %v", err)
		}
		for _, st := range res.Stats {
			fmt.Printf("%s %-10s sessions=%-5d participants=%-5d active=%-4d senders=%-4d bw=%.0fkbps routes=%d churn=%d\n",
				now.Format("15:04:05"), st.Target, st.Sessions, st.Participants,
				st.ActiveSessions, st.Senders, st.BandwidthKbps, st.Routes, st.RouteChurn)
		}
		if res.Handoffs > 0 {
			log.Printf("mantra: %d shard handoff(s) at this boundary; blind=%v", res.Handoffs, res.Blind)
		} else if len(res.Blind) > 0 {
			log.Printf("mantra: blind targets this cycle: %v", res.Blind)
		}
		for _, werr := range res.WALErrs {
			log.Printf("mantra: shard wal: %v", werr)
		}
		if sc.showHealth {
			for _, h := range s.FleetHealth() {
				last := "never"
				if !h.LastSuccess.IsZero() {
					last = h.LastSuccess.Format("15:04:05")
				}
				fmt.Printf("%s %-10s health shard=%-2d breaker=%-9s consecutive_failures=%-3d gaps=%-3d last_success=%s\n",
					now.Format("15:04:05"), h.Target, h.Shard, h.Breaker, h.ConsecutiveFailures, h.GapCount, last)
			}
		}
		for _, a := range s.FleetAnomalies() {
			if a.ID > lastAnomalyID {
				lastAnomalyID = a.ID
				log.Printf("mantra: ANOMALY #%d %s %s at %s: %s", a.ID, a.Severity, a.Kind, a.Target, a.Detail)
			}
			if a.Resolved && !resolvedPrinted[a.ID] {
				resolvedPrinted[a.ID] = true
				log.Printf("mantra: RESOLVED #%d %s at %s after %s", a.ID, a.Kind, a.Target, a.ResolvedAt.Sub(a.At))
			}
		}
		time.Sleep(sc.interval)
	}
}

// allBreakerOpen reports whether every target's breaker is open with at
// least minFailures consecutive failures — the "nothing left to monitor"
// condition under -max-consecutive-failures.
func allBreakerOpen(health []mantra.TargetHealth, minFailures int) bool {
	if len(health) == 0 {
		return false
	}
	for _, h := range health {
		if h.Breaker != collect.BreakerOpen || h.ConsecutiveFailures < minFailures {
			return false
		}
	}
	return true
}
