// Command mantra is the monitoring daemon: it polls the configured router
// CLIs on an interval, processes the dumps through the full Mantra
// pipeline, and serves results over HTTP — the paper's web-based output
// interface.
//
//	mantra -target fixw=127.0.0.1:2601 -target ucsb-r1=127.0.0.1:2602 \
//	       -password mantra -interval 2s -http 127.0.0.1:8080
//
// Endpoints: /  /series/<target>/<metric>  /graph/<target>/<metric>
// /tables/<name>  /anomalies
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
)

type targetFlags []string

func (t *targetFlags) String() string { return strings.Join(*t, ",") }
func (t *targetFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var targets targetFlags
	flag.Var(&targets, "target", "name=addr pair, e.g. fixw=127.0.0.1:2601 (repeatable)")
	password := flag.String("password", "mantra", "CLI password")
	interval := flag.Duration("interval", 5*time.Second, "polling interval (wall clock)")
	httpAddr := flag.String("http", "127.0.0.1:8080", "HTTP address serving results")
	cycles := flag.Int("cycles", 0, "stop after N cycles (0 = run forever)")
	concurrent := flag.Bool("concurrent", false, "collect all targets in parallel")
	aggregate := flag.Bool("aggregate", false, "publish a combined multi-router view (implies -concurrent)")
	flag.Parse()

	if len(targets) == 0 {
		targets = targetFlags{"fixw=127.0.0.1:2601", "ucsb-r1=127.0.0.1:2602"}
	}

	m := mantra.New()
	if *aggregate {
		m.EnableAggregation()
		*concurrent = true
	}
	for _, spec := range targets {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("mantra: bad -target %q (want name=addr)", spec)
		}
		m.AddTarget(mantra.Target{
			Name:     parts[0],
			Dialer:   collect.TCPDialer{Addr: parts[1]},
			Password: *password,
			Prompt:   parts[0] + "> ",
			Timeout:  10 * time.Second,
		})
	}

	go func() {
		log.Printf("mantra: serving results on http://%s/", *httpAddr)
		if err := http.ListenAndServe(*httpAddr, m.Handler()); err != nil {
			log.Fatalf("mantra: http: %v", err)
		}
	}()

	for i := 0; *cycles == 0 || i < *cycles; i++ {
		now := time.Now().UTC()
		var stats []mantra.CycleStats
		var err error
		if *concurrent {
			stats, err = m.RunCycleConcurrent(now)
		} else {
			stats, err = m.RunCycle(now)
		}
		if err != nil {
			log.Printf("mantra: cycle failed: %v", err)
		}
		for _, st := range stats {
			fmt.Printf("%s %-10s sessions=%-5d participants=%-5d active=%-4d senders=%-4d bw=%.0fkbps routes=%d churn=%d\n",
				now.Format("15:04:05"), st.Target, st.Sessions, st.Participants,
				st.ActiveSessions, st.Senders, st.BandwidthKbps, st.Routes, st.RouteChurn)
		}
		for _, a := range m.Anomalies() {
			log.Printf("mantra: ANOMALY %s at %s: %s", a.Kind, a.Target, a.Detail)
		}
		time.Sleep(*interval)
	}
}
