// Command mantrasim runs one of the paper's evaluation scenarios from
// start to finish — simulated network plus monitoring pipeline — and
// writes the resulting figure series and shape report.
//
//	mantrasim -scenario usage -scale standard -out out/
//
// Scenarios: usage (Figs 3–6 + 7), longterm (Fig 8), injection (Fig 9),
// or any incident from the scripted library (rp-failure, rp-failover,
// sa-storm, route-leak, unicast-injection, prune-storm) — an incident
// replay drives the scenario against a live monitor and reports the
// detection timeline against the scenario's contract, exiting non-zero
// if a bound is missed.
// Scales: quick, standard, full (figure scenarios only).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "usage",
		"usage | longterm | injection | a library incident ("+strings.Join(netsim.LibraryScenarios(), ", ")+")")
	scale := flag.String("scale", "standard", "quick | standard | full")
	out := flag.String("out", "out", "output directory")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "standard":
		sc = experiments.Standard
	case "full":
		sc = experiments.Full
	default:
		log.Fatalf("mantrasim: unknown scale %q", *scale)
	}

	var cfg experiments.Config
	switch *scenario {
	case "usage":
		cfg = experiments.UsageConfig(sc)
	case "longterm":
		cfg = experiments.LongTermConfig(sc)
	case "injection":
		cfg = experiments.InjectionConfig(sc)
	default:
		for _, name := range netsim.LibraryScenarios() {
			if name == *scenario {
				replayIncident(name, *out, *quiet)
				return
			}
		}
		log.Fatalf("mantrasim: unknown scenario %q (figure scenarios: usage, longterm, injection; incidents: %s)",
			*scenario, strings.Join(netsim.LibraryScenarios(), ", "))
	}

	r, err := experiments.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now() //mantralint:allow wallclock operator-facing elapsed-time report; the simulation itself runs on virtual time
	progress := func(i int, now time.Time) {
		if !*quiet && i%200 == 0 {
			fmt.Fprintf(os.Stderr, "mantrasim: cycle %d, %s\r", i, now.Format("2006-01-02"))
		}
	}
	if err := r.Run(progress); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\nmantrasim: %s/%s done in %v\n", *scenario, *scale, time.Since(start).Round(time.Second)) //mantralint:allow wallclock operator-facing elapsed-time report on stderr

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	var figs []experiments.FigureResult
	var report experiments.ShapeReport
	switch *scenario {
	case "usage":
		figs = []experiments.FigureResult{r.Figure3(), r.Figure4(), r.Figure5(), r.Figure6(), r.Figure7()}
		report = r.UsageShape()
		route := r.RouteShape()
		report.Checks = append(report.Checks, route.Checks...)
	case "longterm":
		figs = []experiments.FigureResult{r.Figure8()}
		report = r.DeclineShape()
	case "injection":
		figs = []experiments.FigureResult{r.Figure9()}
		report = r.InjectionShape()
	}
	for _, fig := range figs {
		if err := writeFigure(*out, fig); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(report)
	reportPath := filepath.Join(*out, *scenario+"-report.txt")
	if err := os.WriteFile(reportPath, []byte(report.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mantrasim: wrote %d figures and %s\n", len(figs), reportPath)
}

func writeFigure(dir string, fig experiments.FigureResult) error {
	csv, err := os.Create(filepath.Join(dir, fig.ID+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := fig.WriteCSV(csv); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, fig.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	return fig.RenderASCII(txt, 110, 16)
}

// replayIncident drives one scripted incident from the netsim library
// against a live monitor: deterministic background, dom00 transitioned
// to native sparse mode, the scenario's watch routers tracked. It
// prints the anomaly timeline as it unfolds and exits non-zero if the
// scenario's detection or resolution bound is missed.
func replayIncident(name, out string, quiet bool) {
	const (
		warmup   = 10
		duration = 6
	)
	sc, err := netsim.LibraryScenario(name, 1, duration)
	if err != nil {
		log.Fatalf("mantrasim: %v", err)
	}
	tcfg := topo.DefaultInternetConfig()
	tcfg.NumDomains = 4
	inet := topo.BuildInternet(tcfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	ncfg := netsim.DefaultConfig()
	ncfg.FlapPerDomainPerCycle = 0
	ncfg.RestartPerCycle = 0
	n := netsim.New(inet, wl, ncfg)
	targets := []string{"fixw", "ucsb-r1", "dom00-gw"}
	if err := n.Track(targets...); err != nil {
		log.Fatalf("mantrasim: %v", err)
	}
	n.Step()
	n.Step()
	n.TransitionDomain("dom00")
	m := mantra.New()
	for _, t := range targets {
		n.Router(t).Password = "mantra"
		m.AddTarget(mantra.Target{
			Name:     t,
			Dialer:   collect.PipeDialer{Router: n.Router(t)},
			Password: "mantra",
			Prompt:   t + "> ",
		})
	}

	var lines []string
	printedID := -1
	resolvedSeen := make(map[int]bool)
	cycle := func(label string, idx int) {
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			log.Fatalf("mantrasim: cycle: %v", err)
		}
		for _, a := range m.Anomalies() {
			if a.ID > printedID {
				printedID = a.ID
				lines = append(lines, fmt.Sprintf("%s %s+%d ANOMALY  #%d %s %s at %s: %s",
					n.Now().Format("15:04"), label, idx, a.ID, a.Severity, a.Kind, a.Target, a.Detail))
			}
			if a.Resolved && !resolvedSeen[a.ID] {
				resolvedSeen[a.ID] = true
				lines = append(lines, fmt.Sprintf("%s %s+%d RESOLVED #%d %s at %s after %s",
					n.Now().Format("15:04"), label, idx, a.ID, a.Kind, a.Target, a.ResolvedAt.Sub(a.At)))
			}
		}
		if !quiet && len(lines) > 0 {
			for ; len(lines) > 0; lines = lines[1:] {
				fmt.Println(lines[0])
			}
		}
	}
	for i := 1; i <= warmup; i++ {
		cycle("warmup", i)
	}
	if err := n.ScheduleScenario(sc); err != nil {
		log.Fatalf("mantrasim: %v", err)
	}
	primary := sc.Watch[0]
	detected, resolvedIn := 0, 0
	check := func(off int, active bool) {
		for _, a := range m.Anomalies() {
			if a.Kind != sc.DetectKind || a.Target != primary {
				continue
			}
			if detected == 0 {
				detected = off
			}
			if !active && a.Resolved && resolvedIn == 0 {
				resolvedIn = off - duration
			}
		}
	}
	for off := 1; off <= duration; off++ {
		cycle("incident", off)
		check(off, true)
	}
	for off := duration + 1; off <= duration+sc.MaxResolveCycles+4; off++ {
		cycle("recovery", off-duration)
		check(off, false)
	}

	status := 0
	summary := fmt.Sprintf("incident %s: watch=%s kind=%s\n", name, strings.Join(sc.Watch, ","), sc.DetectKind)
	if detected == 0 {
		summary += fmt.Sprintf("  NOT DETECTED within %d incident cycles (bound %d)\n", duration, sc.MaxDetectCycles)
		status = 1
	} else {
		verdict := "ok"
		if detected > sc.MaxDetectCycles {
			verdict = "MISSED BOUND"
			status = 1
		}
		summary += fmt.Sprintf("  detected in %d cycle(s), bound %d: %s\n", detected, sc.MaxDetectCycles, verdict)
	}
	if resolvedIn == 0 {
		summary += fmt.Sprintf("  NOT RESOLVED within %d cycles of incident end (bound %d)\n",
			sc.MaxResolveCycles+4, sc.MaxResolveCycles)
		status = 1
	} else {
		verdict := "ok"
		if resolvedIn > sc.MaxResolveCycles {
			verdict = "MISSED BOUND"
			status = 1
		}
		summary += fmt.Sprintf("  resolved %d cycle(s) after incident end, bound %d: %s\n",
			resolvedIn, sc.MaxResolveCycles, verdict)
	}
	fmt.Print(summary)
	if err := os.MkdirAll(out, 0o755); err != nil {
		log.Fatal(err)
	}
	reportPath := filepath.Join(out, name+"-report.txt")
	if err := os.WriteFile(reportPath, []byte(summary), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mantrasim: wrote %s\n", reportPath)
	os.Exit(status)
}
