// Command mantrasim runs one of the paper's evaluation scenarios from
// start to finish — simulated network plus monitoring pipeline — and
// writes the resulting figure series and shape report.
//
//	mantrasim -scenario usage -scale standard -out out/
//
// Scenarios: usage (Figs 3–6 + 7), longterm (Fig 8), injection (Fig 9).
// Scales: quick, standard, full.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	scenario := flag.String("scenario", "usage", "usage | longterm | injection")
	scale := flag.String("scale", "standard", "quick | standard | full")
	out := flag.String("out", "out", "output directory")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "standard":
		sc = experiments.Standard
	case "full":
		sc = experiments.Full
	default:
		log.Fatalf("mantrasim: unknown scale %q", *scale)
	}

	var cfg experiments.Config
	switch *scenario {
	case "usage":
		cfg = experiments.UsageConfig(sc)
	case "longterm":
		cfg = experiments.LongTermConfig(sc)
	case "injection":
		cfg = experiments.InjectionConfig(sc)
	default:
		log.Fatalf("mantrasim: unknown scenario %q", *scenario)
	}

	r, err := experiments.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now() //mantralint:allow wallclock operator-facing elapsed-time report; the simulation itself runs on virtual time
	progress := func(i int, now time.Time) {
		if !*quiet && i%200 == 0 {
			fmt.Fprintf(os.Stderr, "mantrasim: cycle %d, %s\r", i, now.Format("2006-01-02"))
		}
	}
	if err := r.Run(progress); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\nmantrasim: %s/%s done in %v\n", *scenario, *scale, time.Since(start).Round(time.Second)) //mantralint:allow wallclock operator-facing elapsed-time report on stderr

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	var figs []experiments.FigureResult
	var report experiments.ShapeReport
	switch *scenario {
	case "usage":
		figs = []experiments.FigureResult{r.Figure3(), r.Figure4(), r.Figure5(), r.Figure6(), r.Figure7()}
		report = r.UsageShape()
		route := r.RouteShape()
		report.Checks = append(report.Checks, route.Checks...)
	case "longterm":
		figs = []experiments.FigureResult{r.Figure8()}
		report = r.DeclineShape()
	case "injection":
		figs = []experiments.FigureResult{r.Figure9()}
		report = r.InjectionShape()
	}
	for _, fig := range figs {
		if err := writeFigure(*out, fig); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(report)
	reportPath := filepath.Join(*out, *scenario+"-report.txt")
	if err := os.WriteFile(reportPath, []byte(report.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mantrasim: wrote %d figures and %s\n", len(figs), reportPath)
}

func writeFigure(dir string, fig experiments.FigureResult) error {
	csv, err := os.Create(filepath.Join(dir, fig.ID+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := fig.WriteCSV(csv); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, fig.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	return fig.RenderASCII(txt, 110, 16)
}
