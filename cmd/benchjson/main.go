// Command benchjson converts `go test -bench` text output on stdin into
// a machine-readable JSON array, one object per benchmark result line:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson -out BENCH_lint.json
//
// Each object carries the package (from the preceding "pkg:" line), the
// benchmark name with its -N parallelism suffix split off, the iteration
// count, and every value/unit metric pair go test printed (ns/op, B/op,
// allocs/op, custom units). The output is deliberately timestamp-free:
// two runs over identical results produce identical bytes, so benchmark
// JSON can be diffed and committed like any other artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchResult struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "", "file to write JSON to (default: stdout)")
	flag.Parse()

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}

	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if *out == "" {
		fmt.Print(buf.String())
		return
	}
	if err := os.WriteFile(*out, []byte(buf.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
}

func parse(sc *bufio.Scanner) ([]benchResult, error) {
	var results []benchResult
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := benchResult{Package: pkg, Name: fields[0], Iterations: iters,
			Metrics: make(map[string]float64, (len(fields)-2)/2)}
		if i := strings.LastIndex(r.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Name, r.Procs = r.Name[:i], p
			}
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		if ok {
			results = append(results, r)
		}
	}
	return results, sc.Err()
}
