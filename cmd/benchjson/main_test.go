package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/lint
cpu: Some CPU @ 2.40GHz
BenchmarkMantralintModule-8   	       2	 512345678 ns/op
PASS
ok  	repro/internal/lint	4.521s
pkg: repro
BenchmarkArchive/append-fsync-8         	      10	  20123456 ns/op	 1024 B/op	      12 allocs/op
BenchmarkCycleEngine/pipelined-8        	       3	 331234567 ns/op
--- BENCH: BenchmarkOddLine
BenchmarkNotAResultLine
ok  	repro	9.881s
`

func TestParse(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader(sampleBench)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}

	r := results[0]
	if r.Package != "repro/internal/lint" || r.Name != "BenchmarkMantralintModule" ||
		r.Procs != 8 || r.Iterations != 2 {
		t.Errorf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 512345678 {
		t.Errorf("ns/op = %v", r.Metrics["ns/op"])
	}

	// The -8 suffix comes off the last dash; the sub-benchmark's own
	// dashes stay in the name, and the pkg line resets per package.
	r = results[1]
	if r.Package != "repro" || r.Name != "BenchmarkArchive/append-fsync" || r.Procs != 8 {
		t.Errorf("second result = %+v", r)
	}
	if r.Metrics["B/op"] != 1024 || r.Metrics["allocs/op"] != 12 {
		t.Errorf("second metrics = %v", r.Metrics)
	}
}
