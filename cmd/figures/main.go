// Command figures regenerates every figure of the paper's evaluation in
// one run: the usage scenario (Figures 3–7), the long-term scenario
// (Figure 8) and the injection day (Figure 9), writing CSV series, ASCII
// charts, and the combined paper-vs-measured shape report.
//
// The figure series are thin wrappers over the monitor's compressed
// long-horizon store: each panel streams out of the same range-query
// engine the daemon serves at /query. -posthoc switches back to reading
// the in-memory rings directly; the outputs are byte-identical (the
// equivalence is enforced by test).
//
//	figures -scale standard -out out/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	scale := flag.String("scale", "standard", "quick | standard | full")
	out := flag.String("out", "out", "output directory")
	postHoc := flag.Bool("posthoc", false, "read the in-memory rings directly instead of streaming from the compressed store")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "standard":
		sc = experiments.Standard
	case "full":
		sc = experiments.Full
	default:
		log.Fatalf("figures: unknown scale %q", *scale)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	var all experiments.ShapeReport
	run := func(name string, cfg experiments.Config, figs func(*experiments.Runner) []experiments.FigureResult, shape func(*experiments.Runner) experiments.ShapeReport) {
		start := time.Now() //mantralint:allow wallclock operator-facing elapsed-time report; figure data itself runs on the simulated clock
		r, err := experiments.NewRunner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r.PostHoc = *postHoc
		last := ""
		if err := r.Run(func(i int, now time.Time) {
			if d := now.Format("2006-01"); d != last {
				last = d
				fmt.Fprintf(os.Stderr, "figures: %s %s...\n", name, now.Format("2006-01"))
			}
		}); err != nil {
			log.Fatal(err)
		}
		for _, fig := range figs(r) {
			if err := writeFigure(*out, fig); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("figures: wrote %s (%s)\n", fig.ID, fig.Title)
		}
		rep := shape(r)
		all.Checks = append(all.Checks, rep.Checks...)
		fmt.Printf("figures: %s finished in %v\n", name, time.Since(start).Round(time.Second)) //mantralint:allow wallclock operator-facing elapsed-time report; not part of any figure output
	}

	run("usage", experiments.UsageConfig(sc),
		func(r *experiments.Runner) []experiments.FigureResult {
			writeStability(*out, r)
			return []experiments.FigureResult{r.Figure3(), r.Figure4(), r.Figure5(), r.Figure6(), r.Figure7()}
		},
		func(r *experiments.Runner) experiments.ShapeReport {
			rep := r.UsageShape()
			rep.Checks = append(rep.Checks, r.RouteShape().Checks...)
			return rep
		})
	run("longterm", experiments.LongTermConfig(sc),
		func(r *experiments.Runner) []experiments.FigureResult {
			return []experiments.FigureResult{r.Figure8()}
		},
		func(r *experiments.Runner) experiments.ShapeReport { return r.DeclineShape() })
	run("injection", experiments.InjectionConfig(sc),
		func(r *experiments.Runner) []experiments.FigureResult {
			return []experiments.FigureResult{r.Figure9()}
		},
		func(r *experiments.Runner) experiments.ShapeReport { return r.InjectionShape() })

	fmt.Println()
	fmt.Print(all)
	path := filepath.Join(*out, "shape-report.txt")
	if err := os.WriteFile(path, []byte(all.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("figures: combined report at %s\n", path)
}

// writeStability records the per-prefix route-stability analysis of the
// usage run — the route lifetimes and flap counts §II-B calls for.
func writeStability(dir string, r *experiments.Runner) {
	f, err := os.Create(filepath.Join(dir, "stability.txt"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	for _, target := range []string{"fixw", "ucsb-r1"} {
		rs := r.Mon.RouteStability(target)
		if rs == nil {
			continue
		}
		sum := rs.Summary()
		fmt.Fprintf(f, "%s: %d prefixes tracked over %d cycles; %d never flapped; mean availability %.3f; %d total flaps\n",
			target, sum.Prefixes, rs.Cycles(), sum.StablePrefixes, sum.MeanAvailability, sum.TotalFlaps)
		fmt.Fprintf(f, "least stable prefixes:\n")
		for _, st := range rs.LeastStable(10) {
			fmt.Fprintf(f, "  %-19s flaps=%-3d availability=%.3f mean-lifetime=%s\n",
				st.Prefix, st.Flaps, st.Availability, st.MeanLifetime.Round(time.Minute))
		}
		fmt.Fprintln(f)
	}
	fmt.Printf("figures: wrote stability report\n")
}

func writeFigure(dir string, fig experiments.FigureResult) error {
	csv, err := os.Create(filepath.Join(dir, fig.ID+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := fig.WriteCSV(csv); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, fig.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	return fig.RenderASCII(txt, 110, 16)
}
