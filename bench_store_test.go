// Benchmarks for the compressed long-horizon series store: append
// throughput, on-disk compression against the raw CSV the pre-store
// pipeline wrote, and cold query latency straight off the disk mirror.
// `make bench-store` captures the series in BENCH_store.json. The
// latency numbers matter against one yardstick: the paper's 30-minute
// collection cycle. A cold range query over years of history must cost
// microseconds, not cycles.
package mantra_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core/tsdb"
)

// benchSeries generates a cycle-cadence series shaped like the
// monitor's counters: mostly 30-minute steps with drift, bursts and
// resets, plus occasional gap cycles.
func benchSeries(seed int64, n int) []tsdb.Point {
	r := rand.New(rand.NewSource(seed))
	ts := time.Date(1998, 10, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	v := float64(r.Intn(4000))
	pts := make([]tsdb.Point, 0, n)
	for i := 0; i < n; i++ {
		ts += 1800 * 1e9
		if r.Intn(40) == 0 {
			pts = append(pts, tsdb.Point{T: ts, Gap: true})
			continue
		}
		switch r.Intn(10) {
		case 0:
			v += float64(r.Intn(300)) // burst
		case 1:
			v = 0 // reset
		default:
			v += float64(r.Intn(7)) - 3
			if v < 0 {
				v = 0
			}
		}
		pts = append(pts, tsdb.Point{T: ts, V: v})
	}
	return pts
}

func appendAll(st *tsdb.Store, target string, pts []tsdb.Point) {
	for _, pt := range pts {
		if pt.Gap {
			st.AppendGap(target, "routes", pt.T)
		} else {
			st.Append(target, "routes", pt.T, pt.V)
		}
	}
}

// BenchmarkStoreAppend measures raw ingest: one point through the
// delta-of-delta/XOR encoder, block sealing and downsampling included.
func BenchmarkStoreAppend(b *testing.B) {
	pts := benchSeries(1, b.N)
	st := tsdb.New()
	b.ResetTimer()
	for _, pt := range pts {
		if pt.Gap {
			st.AppendGap("fixw", "routes", pt.T)
		} else {
			st.Append("fixw", "routes", pt.T, pt.V)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkStoreCompression reports the compression ratio of ten years
// of 30-minute cycles against the CSV rows cmd/figures used to write —
// the acceptance floor is 5x.
func BenchmarkStoreCompression(b *testing.B) {
	// ~175k cycles ≈ 10 years at the paper's cadence.
	pts := benchSeries(2, 175_000)
	var ratio float64
	for i := 0; i < b.N; i++ {
		st := tsdb.New()
		appendAll(st, "fixw", pts)
		var csv strings.Builder
		for _, pt := range pts {
			if pt.Gap {
				fmt.Fprintf(&csv, "%s,\n", time.Unix(0, pt.T).UTC().Format(time.RFC3339))
				continue
			}
			fmt.Fprintf(&csv, "%s,%g\n", time.Unix(0, pt.T).UTC().Format(time.RFC3339), pt.V)
		}
		stored := st.CompressedBytes("fixw", "routes")
		ratio = float64(csv.Len()) / float64(stored)
		if ratio < 5 {
			b.Fatalf("compression ratio %.2fx below the 5x floor", ratio)
		}
	}
	b.ReportMetric(ratio, "csv-to-store-x")
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkStoreColdQuery opens the disk mirror read-only — no warm
// process, no page of history in memory — and runs a full range scan
// and a bounded aggregate. The numbers to watch: both must land far
// under the 30-minute collection cycle (sub-millisecond in practice),
// so an operator can interrogate years of history mid-incident.
func BenchmarkStoreColdQuery(b *testing.B) {
	dir := b.TempDir()
	pts := benchSeries(3, 50_000)
	st := tsdb.New()
	if err := st.AttachDir(dir, false); err != nil {
		b.Fatal(err)
	}
	appendAll(st, "fixw", pts)
	if err := st.CloseDir(); err != nil {
		b.Fatal(err)
	}

	b.Run("open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tsdb.Open(dir); err != nil {
				b.Fatal(err)
			}
		}
	})
	cold, err := tsdb.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	mid := pts[len(pts)/2].T
	b.Run("range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := cold.Query(tsdb.Query{Metric: "routes", Op: tsdb.OpRange})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Targets[0].Points) == 0 {
				b.Fatal("empty range")
			}
		}
	})
	b.Run("avg-half", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := cold.Query(tsdb.Query{Metric: "routes", Op: tsdb.OpAvg, From: mid})
			if err != nil {
				b.Fatal(err)
			}
			if res.Targets[0].Agg == nil {
				b.Fatal("empty aggregate")
			}
		}
	})
}

// BenchmarkStoreTopK ranks a 50-target fleet by aggregate over full
// history — the /query?op=topk path that powers "which routers are
// busiest" during an incident.
func BenchmarkStoreTopK(b *testing.B) {
	st := tsdb.New()
	for i := 0; i < 50; i++ {
		appendAll(st, fmt.Sprintf("dom%02d-gw", i), benchSeries(int64(10+i), 5_000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Query(tsdb.Query{Metric: "routes", Op: tsdb.OpTopK, K: 5, By: "max"})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Targets) != 5 {
			b.Fatalf("topk returned %d targets", len(res.Targets))
		}
	}
}
