package mantra_test

// The dynamic half of the //mantra:hotpath contract. mantralint's
// hotalloc check bounds the *static* allocation-site count of every
// hot-path function (TestHotRootsPinned in internal/lint pins the root
// list); the gates here bound what the key roots *actually* allocate
// per call with testing.AllocsPerRun, so an allocation that slips past
// the static view — hidden in the runtime, an escape the analyzer
// cannot prove — still fails the suite. Bounds are pinned a little
// above today's measurements: headroom for runtime noise, tight enough
// that a new per-call allocation (a fmt detour, a fresh map or scratch
// slice) trips the gate.

import (
	"testing"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/logger"
	"repro/internal/core/tables"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// gateNetwork builds the small simulated internetwork the gates scrape
// real dumps from.
func gateNetwork(tb testing.TB) *netsim.Network {
	tb.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 3
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-gw"); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		n.Step()
	}
	return n
}

func gateTarget(n *netsim.Network, name string) collect.Target {
	r := n.Router(name)
	r.Password = "pw"
	return collect.Target{
		Name:     name,
		Dialer:   collect.PipeDialer{Router: r},
		Password: "pw",
		Prompt:   name + "> ",
		Timeout:  5 * time.Second,
	}
}

func gateDumps(tb testing.TB) []collect.Dump {
	tb.Helper()
	n := gateNetwork(tb)
	dumps, err := collect.CollectAll(gateTarget(n, "fixw"), collect.StandardCommands, n.Now())
	if err != nil {
		tb.Fatal(err)
	}
	return dumps
}

// allocGate runs fn under AllocsPerRun and fails if the average
// allocation count exceeds max.
func allocGate(t *testing.T, name string, max float64, fn func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, fn); got > max {
		t.Errorf("%s: %.1f allocs/op, gate is %.0f", name, got, max)
	}
}

func TestHotpathAllocGates(t *testing.T) {
	dumps := gateDumps(t)
	prompt := "fixw> "

	// The expect/dump parse path: per-dump costs scale with dump size,
	// so the gates bound the whole scraped command set at once.
	allocGate(t, "Preprocess all dumps", 1400, func() {
		for _, d := range dumps {
			collect.Preprocess(d.Raw)
		}
	})
	allocGate(t, "ValidateDumps", 40, func() {
		if err := collect.ValidateDumps(prompt, dumps); err != nil {
			t.Fatal(err)
		}
	})
	allocGate(t, "BuildSnapshot", 5500, func() {
		if _, err := tables.BuildSnapshot(dumps); err != nil {
			t.Fatal(err)
		}
	})

	// Backoff's jitter hash must stay on the stack: zero allocations.
	// (Regression: it once formatted target/attempt/seed through fmt
	// into the hasher, three boxed allocations per retry decision.)
	pol := collect.DefaultPolicy()
	allocGate(t, "Policy.Backoff", 0, func() {
		pol.Backoff("fixw", 3)
	})
}

// TestLoggerAppendSteadyStateAllocs pins logger.Append's steady state:
// with the topology quiet, a cycle's diff reuses the target's scratch
// sets and appends no delta entries, so per-cycle allocations stay near
// zero. (Regression: Append once built two fresh seen-maps per cycle
// per target.)
func TestLoggerAppendSteadyStateAllocs(t *testing.T) {
	dumps := gateDumps(t)
	sn, err := tables.BuildSnapshot(dumps)
	if err != nil {
		t.Fatal(err)
	}
	l := logger.New()
	l.Append(sn) // full first cycle
	l.Append(sn) // warm the scratch sets and record slices
	allocGate(t, "Logger.Append steady state", 8, func() {
		l.Append(sn)
	})
}

// BenchmarkHotpathParsePath tracks the expect/dump parse chain —
// Preprocess, ValidateDumps, BuildSnapshot over one scraped command set
// — with allocs/op reported, so BENCH_lint.json records the numbers the
// gates above bound.
func BenchmarkHotpathParsePath(b *testing.B) {
	dumps := gateDumps(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range dumps {
			collect.Preprocess(d.Raw)
		}
		if err := collect.ValidateDumps("fixw> ", dumps); err != nil {
			b.Fatal(err)
		}
		if _, err := tables.BuildSnapshot(dumps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathLoggerAppend tracks the steady-state delta append.
func BenchmarkHotpathLoggerAppend(b *testing.B) {
	sn, err := tables.BuildSnapshot(gateDumps(b))
	if err != nil {
		b.Fatal(err)
	}
	l := logger.New()
	l.Append(sn)
	l.Append(sn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(sn)
	}
}
