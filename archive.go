package mantra

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/logger"
	"repro/internal/core/process"
)

// ErrArchiveExists reports an EnableArchive call with Resume unset against
// a directory that already holds archive data — refusing is the safe
// default; an operator must opt into resuming (or point at a fresh
// directory) rather than silently shadowing months of collected history.
var ErrArchiveExists = errors.New("mantra: archive directory has data; set Resume to recover it")

// ArchiveConfig configures the durable archive behind a monitor.
type ArchiveConfig struct {
	// Dir is the archive directory (WAL segments plus checkpoints).
	Dir string
	// CheckpointEvery writes a full-state checkpoint after this many
	// cycles; 0 means 12 (six hours at the paper's 30-minute cadence).
	CheckpointEvery int
	// SegmentBytes, SyncEveryAppend, KeepCheckpoints pass through to the
	// store; see logger.StoreOptions.
	SegmentBytes    int64
	SyncEveryAppend bool
	KeepCheckpoints int
	// Resume recovers existing archive data into the monitor. Without it,
	// a directory that already has data is an error.
	Resume bool
}

// RecoveryReport summarizes what EnableArchive restored.
type RecoveryReport struct {
	// Resumed is false for a fresh (empty) archive.
	Resumed bool `json:"resumed"`
	// CheckpointAt is the instant of the checkpoint recovery started from
	// (zero when recovery replayed the WAL from its beginning).
	CheckpointAt time.Time `json:"checkpoint_at"`
	// CyclesReplayed and GapsReplayed count the WAL-tail events re-applied
	// on top of the checkpoint.
	CyclesReplayed int `json:"cycles_replayed"`
	GapsReplayed   int `json:"gaps_replayed"`
	// Targets is every target with restored history.
	Targets []string `json:"targets"`
	// Stats is the store's open-time scan outcome: torn-tail repair,
	// corrupt checkpoints skipped, records replayed.
	Stats logger.RecoveryStats `json:"stats"`
}

// ArchiveStatus is the operator view served at /archive.
type ArchiveStatus struct {
	Store logger.StoreStats `json:"store"`
	// Recovery is the startup report, nil when the archive started fresh.
	Recovery *RecoveryReport `json:"recovery,omitempty"`
	// LastAppendError is the most recent archive write failure; appends
	// never abort a cycle, they degrade to in-memory-only with this note.
	LastAppendError string `json:"last_append_error,omitempty"`
	// MirrorError is the most recent tsdb block-mirror write failure;
	// like WAL appends, mirror writes degrade rather than abort — the
	// in-memory store stays authoritative and the next attach reconciles.
	MirrorError string `json:"mirror_error,omitempty"`
}

// archiveExtra is the monitor-level state a checkpoint carries beyond the
// delta log itself, so recovery restores the processor series, stability
// trackers and health ledger without re-ingesting the whole history.
//
//mantra:codec pair=ckpt-archiveextra shape=3b61f622dc615f26
type archiveExtra struct {
	Proc      *process.State
	Stability map[string]*process.StabilityState
	Health    []collect.TargetHealth
}

// archiveState is the monitor's handle on its durable archive.
type archiveState struct {
	store           *logger.Store
	checkpointEvery int
	cyclesSince     int
	report          *RecoveryReport
	lastAppendErr   string
}

// EnableArchive attaches a durable archive to the monitor: every delta
// and gap marker the monitor logs is persisted to a checksummed
// write-ahead log under cfg.Dir, with periodic full-state checkpoints.
// With cfg.Resume set and existing data present, the monitor's logger,
// processor series, stability trackers, health ledger and latest
// snapshots are rebuilt to their pre-crash values before the call
// returns; at most the final partially-written record is lost, and the
// returned report says exactly what was repaired. Call before the first
// cycle.
func (m *Monitor) EnableArchive(cfg ArchiveConfig) (*RecoveryReport, error) {
	if m.archive != nil {
		return nil, errors.New("mantra: archive already enabled")
	}
	store, err := logger.OpenStore(cfg.Dir, logger.StoreOptions{
		SegmentBytes:    cfg.SegmentBytes,
		SyncEveryAppend: cfg.SyncEveryAppend,
		KeepCheckpoints: cfg.KeepCheckpoints,
	})
	if err != nil {
		return nil, err
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 12
	}
	st := &archiveState{store: store, checkpointEvery: every}

	report := &RecoveryReport{}
	if store.HasData() {
		if !cfg.Resume {
			store.Close() //mantralint:allow walerr abandoning the store on a path already returning an error; nothing was written
			return nil, fmt.Errorf("%w: %s", ErrArchiveExists, cfg.Dir)
		}
		if err := m.recoverArchive(store, report); err != nil {
			store.Close() //mantralint:allow walerr abandoning the store on a path already returning an error; nothing was written
			return nil, err
		}
	}
	st.report = report
	m.archive = st
	// Attach the compressed-series block mirror after recovery has rebuilt
	// the in-memory store from checkpoint + WAL replay: AttachDir repairs
	// any torn mirror tail and reconciles sealed blocks the mirror is
	// missing, so a crash mid-mirror-write self-heals here. A mirror
	// attach failure degrades to in-memory-only, same as append errors.
	if err := m.proc.Store().AttachDir(filepath.Join(cfg.Dir, "tsdb"), cfg.SyncEveryAppend); err != nil {
		st.lastAppendErr = err.Error()
	}
	m.server.SetArchive(func() any { return m.ArchiveStatus() })
	return report, nil
}

// recoverArchive rebuilds the monitor from a store's recovered state.
//
//mantra:statetransfer root=checkpoint-import
func (m *Monitor) recoverArchive(store *logger.Store, report *RecoveryReport) error {
	ra := store.Recover()
	report.Resumed = true
	report.CheckpointAt = ra.CheckpointAt
	report.Stats = ra.Stats

	m.log = ra.Logger

	// recoveredAt approximates "now" for breaker cooldowns: the newest
	// instant the archive knows about, which keeps recovery correct under
	// simulated clocks where the wall clock is meaningless.
	recoveredAt := ra.CheckpointAt
	for _, ev := range ra.Events {
		if ev.At.After(recoveredAt) {
			recoveredAt = ev.At
		}
	}

	// Checkpointed monitor state: processor series, stability, health.
	if len(ra.Extra) > 0 {
		var extra archiveExtra
		if err := gob.NewDecoder(bytes.NewReader(ra.Extra)).Decode(&extra); err != nil {
			return fmt.Errorf("mantra: checkpoint monitor state: %w", err)
		}
		m.proc.ImportState(extra.Proc)
		trackers := make(map[string]*process.RouteStability, len(extra.Stability))
		for target, ss := range extra.Stability {
			trackers[target] = process.StabilityFromState(ss)
		}
		m.engine.ImportStability(trackers)
		for _, h := range extra.Health {
			m.collector.RestoreHealth(h, recoveredAt)
		}
	}

	// Replay the WAL tail — the cycles between the checkpoint and the
	// crash — through the same processing the live path uses.
	for _, ev := range ra.Events {
		if ev.Gap {
			report.GapsReplayed++
			m.proc.MarkGap(ev.Target, ev.At)
			switch {
			case ev.Target == AggregateTarget:
			case strings.Contains(ev.Reason, collect.ErrBreakerOpen.Error()):
				// A breaker-open skip is not a fresh failure; replaying it
				// as one would inflate the failure counters past what the
				// monitor showed before the crash.
				m.collector.RecordSkipped(ev.Target, ev.At)
			default:
				m.collector.RecordFailure(ev.Target, ev.At, errors.New(ev.Reason))
			}
			continue
		}
		report.CyclesReplayed++
		m.proc.IngestCounts(ev.Snapshot, ev.SACache, ev.MBGPRoutes)
		m.engine.SetLatest(ev.Target, ev.Snapshot)
		if ev.Target != AggregateTarget {
			// The aggregate view is synthetic: the live path gives it no
			// stability tracker or health entry, so neither does replay.
			m.engine.ObserveStability(ev.Snapshot)
			m.collector.RecordSuccess(ev.Target, ev.At)
		}
	}

	// Targets fully covered by the checkpoint had no tail events; their
	// latest snapshots are materialized from the recovered delta log.
	for _, target := range m.log.Targets() {
		report.Targets = append(report.Targets, target)
		if m.engine.Latest(target) == nil {
			if sn, ok := m.log.Materialized(target); ok {
				m.engine.SetLatest(target, sn)
			}
		}
		if sn := m.engine.Latest(target); sn != nil {
			m.refreshTables(target, sn)
		}
	}
	return nil
}

// archiveAppendDelta persists one logged delta; archive write failures
// degrade the monitor to in-memory-only for that record instead of
// aborting the cycle, and are surfaced through ArchiveStatus.
func (m *Monitor) archiveAppendDelta(target string, rec logger.CycleRecord, fullEntries uint64) {
	if m.archive == nil {
		return
	}
	if err := m.archive.store.AppendDelta(target, rec, fullEntries); err != nil {
		m.archive.lastAppendErr = err.Error()
	}
}

// archiveAppendGap persists one gap marker; failures degrade as above.
func (m *Monitor) archiveAppendGap(target string, at time.Time, reason string) {
	if m.archive == nil {
		return
	}
	if err := m.archive.store.AppendGap(target, at, reason); err != nil {
		m.archive.lastAppendErr = err.Error()
	}
}

// archiveAfterCycle advances the auto-checkpoint counter.
func (m *Monitor) archiveAfterCycle(now time.Time) {
	if m.archive == nil {
		return
	}
	m.archive.cyclesSince++
	if m.archive.cyclesSince >= m.archive.checkpointEvery {
		if err := m.Checkpoint(now); err != nil {
			m.archive.lastAppendErr = err.Error()
		}
	}
}

// Checkpoint writes a full-state checkpoint — delta log, processor
// series, stability trackers, health ledger — stamped at now, bounding
// the WAL tail a future recovery must replay. No-op without an archive.
//
//mantra:statetransfer root=checkpoint-export
func (m *Monitor) Checkpoint(now time.Time) error {
	if m.archive == nil {
		return nil
	}
	trackers := m.engine.StabilityTrackers()
	extra := archiveExtra{
		Proc:      m.proc.ExportState(),
		Stability: make(map[string]*process.StabilityState, len(trackers)),
		Health:    m.collector.Health(),
	}
	for target, rs := range trackers {
		extra.Stability[target] = rs.ExportState()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(extra); err != nil {
		return fmt.Errorf("mantra: checkpoint monitor state: %w", err)
	}
	if err := m.archive.store.WriteCheckpoint(m.log, buf.Bytes(), now); err != nil {
		return err
	}
	m.archive.cyclesSince = 0
	return nil
}

// ArchiveStatus returns the archive's operator view (served at /archive),
// or the zero value when no archive is enabled.
func (m *Monitor) ArchiveStatus() ArchiveStatus {
	if m.archive == nil {
		return ArchiveStatus{}
	}
	st := ArchiveStatus{
		Store:           m.archive.store.Stats(),
		Recovery:        m.archive.report,
		LastAppendError: m.archive.lastAppendErr,
	}
	if err := m.proc.Store().PersistErr(); err != nil {
		st.MirrorError = err.Error()
	}
	return st
}

// CloseArchive checkpoints at now and closes the archive; the monitor
// keeps running in-memory-only. No-op without an archive.
func (m *Monitor) CloseArchive(now time.Time) error {
	if m.archive == nil {
		return nil
	}
	err := m.Checkpoint(now)
	if cerr := m.archive.store.Close(); err == nil {
		err = cerr
	}
	if cerr := m.proc.Store().CloseDir(); err == nil {
		err = cerr
	}
	m.archive = nil
	return err
}
