package mantra_test

// Chaos proofs for the fault-tolerant shard supervisor: a shard worker
// is killed mid-cycle while a scripted incident is active, and the
// fleet must (a) hand the dead shard's targets off within the crash-
// detection bound, (b) still detect the incident within its contract
// plus one cycle of slack per blind cycle, (c) keep the blind window
// visible in /health (last-success timestamp and gap count), and (d)
// leave the per-shard WALs free of duplicate, torn or out-of-order
// frames — the union of frames across all shard directories covers
// every cycle of every target exactly once. A second proof pins the
// determinism contract under incidents: the merged fleet output and
// re-keyed anomaly log are byte-identical at 1, 4 and 16 shards.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/logger"
	"repro/internal/core/process"
	"repro/internal/core/shard"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// shardIncidentFleet builds the 3-target sharded fleet the library
// scenarios assume: dom00 transitioned to native sparse mode, scripted
// faults only, breaker kept out of the arithmetic.
func shardIncidentFleet(t testing.TB, mut func(*shard.Config)) (*netsim.Network, *shard.Supervisor) {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	ncfg := netsim.DefaultConfig()
	ncfg.FlapPerDomainPerCycle = 0
	ncfg.RestartPerCycle = 0
	n := netsim.New(inet, wl, ncfg)
	targets := []string{"fixw", "ucsb-r1", "dom00-gw"}
	if err := n.Track(targets...); err != nil {
		t.Fatal(err)
	}
	n.Step()
	n.Step()
	n.TransitionDomain("dom00")

	scfg := shard.Config{
		Shards:         3,
		RestartBackoff: time.Hour, // two 30-minute cycles
		Policy: collect.Policy{
			MaxAttempts:      3,
			BreakerThreshold: 1 << 20,
			BreakerCooldown:  90 * time.Minute,
			Sleep:            func(time.Duration) {},
		},
	}
	if mut != nil {
		mut(&scfg)
	}
	s, err := shard.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for _, name := range targets {
		n.Router(name).Password = "pw"
		s.Register(collect.Target{
			Name:     name,
			Dialer:   collect.PipeDialer{Router: n.Router(name)},
			Password: "pw",
			Prompt:   name + "> ",
			Timeout:  5 * time.Second,
		})
	}
	return n, s
}

func TestChaosShardKillDuringIncident(t *testing.T) {
	const duration = 6
	sc, err := netsim.LibraryScenario("sa-storm", 1, duration)
	if err != nil {
		t.Fatal(err)
	}
	primary := sc.Watch[0] // fixw
	dir := t.TempDir()
	n, s := shardIncidentFleet(t, func(c *shard.Config) { c.DataDir = dir })

	var stamps []time.Time
	runCycle := func() *shard.CycleResult {
		t.Helper()
		n.Step()
		res, err := s.RunCycle(n.Now())
		if err != nil {
			t.Fatal(err)
		}
		stamps = append(stamps, res.At)
		return res
	}
	episode := func() *process.Anomaly {
		for _, a := range s.FleetAnomalies() {
			if a.Kind == sc.DetectKind && a.Target == primary {
				return &a
			}
		}
		return nil
	}
	healthOf := func(name string) shard.TargetHealthView {
		t.Helper()
		for _, row := range s.FleetHealth() {
			if row.Target == name {
				return row
			}
		}
		t.Fatalf("%s missing from fleet health", name)
		return shard.TargetHealthView{}
	}
	gapCount := func() int {
		if sr := s.TargetSeries(primary, process.MetricRoutes); sr != nil {
			return sr.GapCount()
		}
		return 0
	}

	const warmup = 10
	for i := 0; i < warmup; i++ {
		if res := runCycle(); len(res.Blind) != 0 || len(res.Degraded) != 0 {
			t.Fatalf("warmup cycle degraded: %+v", res)
		}
	}
	if a := episode(); a != nil {
		t.Fatalf("anomaly open before the incident: %+v", a)
	}
	preKill := n.Now()
	initialAssign := s.Status().Assignment
	victim := initialAssign[primary]
	var victimTargets []string
	for name, sh := range initialAssign {
		if sh == victim {
			victimTargets = append(victimTargets, name)
		}
	}

	if err := n.ScheduleScenario(sc); err != nil {
		t.Fatal(err)
	}
	// The incident becomes visible at offset 1 — and that is exactly
	// the cycle the primary's shard is killed in, after collecting but
	// before persisting anything. The fleet must not lose the detection.
	s.Kill(victim, shard.KillMidCycle)

	startGaps := gapCount()
	res := runCycle() // offset 1: torn cycle
	if res.Handoffs != 0 || len(res.Blind) != len(victimTargets) {
		t.Fatalf("torn cycle = %+v, want %v blind and no handoff yet", res, victimTargets)
	}

	res = runCycle() // offset 2: crash detected at the boundary, handoff
	if res.Handoffs != 1 || len(res.Blind) != 0 {
		t.Fatalf("handoff cycle = %+v, want the handoff and full coverage", res)
	}
	st := s.Status()
	if st.Assignment[primary] == victim || st.Shards[victim].Alive {
		t.Fatalf("%s still on the dead shard: %+v", primary, st)
	}
	// Blind-window visibility (the /health contract): collection resumed
	// on the new owner in this very cycle, so last-success is the
	// handoff cycle — and the torn cycle in between is an explicit gap,
	// never a success. The torn cycle's uncommitted collection must not
	// have leaked into the ledger.
	h := healthOf(primary)
	tornAt := stamps[len(stamps)-2]
	if !h.LastSuccess.Equal(n.Now()) || h.LastSuccess.Equal(tornAt) {
		t.Errorf("%s last success = %v, want the handoff cycle %v (pre-kill %v, torn %v)",
			primary, h.LastSuccess, n.Now(), preKill, tornAt)
	}
	if h.GapCount != 1 {
		t.Errorf("%s gap count after handoff = %d, want 1", primary, h.GapCount)
	}
	sr := s.TargetSeries(primary, process.MetricRoutes)
	if len(sr.Gaps) != 1 || !sr.Gaps[0].Equal(tornAt) {
		t.Errorf("%s gap markers = %v, want exactly the torn cycle %v", primary, sr.Gaps, tornAt)
	}

	detected := 0
	for off := 3; off <= duration; off++ {
		runCycle()
		if a := episode(); a != nil {
			if detected == 0 {
				detected = off
			}
			if a.Resolved {
				t.Fatalf("offset %d: episode resolved mid-incident: %+v", off, a)
			}
		}
	}
	if a := episode(); a != nil && detected == 0 {
		detected = duration
	}
	if detected == 0 {
		t.Fatalf("%s at %s lost across the shard handoff", sc.DetectKind, primary)
	}
	if slack := gapCount() - startGaps; detected > sc.MaxDetectCycles+slack+1 {
		// +1: the detection window opened on the torn cycle itself,
		// whose collection died with the worker.
		t.Errorf("detection latency = %d cycles, bound %d (+%d gap slack +1 torn)",
			detected, sc.MaxDetectCycles, slack)
	}

	// The victim restarted after its backoff and stole its ranges back.
	st = s.Status()
	if row := st.Shards[victim]; !row.Alive || row.Generation != 1 || row.Restarts != 1 {
		t.Fatalf("victim shard after backoff = %+v", row)
	}
	for name, sh := range initialAssign {
		if st.Assignment[name] != sh {
			t.Errorf("failback did not restore %s to shard %d", name, sh)
		}
	}

	// Recovery: the episode resolves within contract once the storm ends.
	endGaps := gapCount()
	resolvedIn := 0
	for off := 1; off <= sc.MaxResolveCycles+8; off++ {
		runCycle()
		a := episode()
		if a == nil {
			t.Fatal("episode vanished from the fleet anomaly log")
		}
		if a.Resolved {
			resolvedIn = off
			break
		}
	}
	if resolvedIn == 0 {
		t.Fatalf("%s at %s never resolved", sc.DetectKind, primary)
	}
	if slack := gapCount() - endGaps; resolvedIn > sc.MaxResolveCycles+slack {
		t.Errorf("resolution latency = %d cycles, bound %d (+%d gap slack)",
			resolvedIn, sc.MaxResolveCycles, slack)
	}
	count := 0
	for _, a := range s.FleetAnomalies() {
		if a.Kind == sc.DetectKind && a.Target == primary {
			count++
		}
	}
	if count != 1 {
		t.Errorf("episodes of %s at %s = %d, want exactly 1 across the handoff", sc.DetectKind, primary, count)
	}

	// WAL integrity across the kill, handoff and failback: reopen every
	// shard directory and replay. Per target the union of frames across
	// all directories must cover every cycle since registration exactly
	// once — data or explicit gap, never duplicated, never out of order,
	// and nothing at all from the torn cycle's uncommitted work.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	type frame struct {
		dir int
		gap bool
	}
	seen := map[string]map[time.Time]frame{}
	lastAt := map[[2]interface{}]time.Time{}
	for i := 0; i < 3; i++ {
		st, err := logger.OpenStore(filepath.Join(dir, fmt.Sprintf("shard-%02d", i)), logger.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ra := st.Recover()
		for _, ev := range ra.Events {
			key := [2]interface{}{i, ev.Target}
			if !ev.At.After(lastAt[key]) {
				t.Errorf("shard %d: %s frame at %v not after previous %v", i, ev.Target, ev.At, lastAt[key])
			}
			lastAt[key] = ev.At
			if seen[ev.Target] == nil {
				seen[ev.Target] = map[time.Time]frame{}
			}
			if prev, dup := seen[ev.Target][ev.At]; dup {
				t.Errorf("%s cycle %v recorded twice: shard %d and shard %d (gap=%v/%v)",
					ev.Target, ev.At, prev.dir, i, prev.gap, ev.Gap)
			}
			seen[ev.Target][ev.At] = frame{dir: i, gap: ev.Gap}
		}
		st.Close()
	}
	for _, name := range []string{"fixw", "ucsb-r1", "dom00-gw"} {
		for _, at := range stamps {
			if _, ok := seen[name][at]; !ok {
				t.Errorf("%s cycle %v missing from every shard WAL", name, at)
			}
		}
		if extra := len(seen[name]) - len(stamps); extra != 0 {
			t.Errorf("%s has %d WAL frames beyond the %d cycles", name, extra, len(stamps))
		}
	}
}

// TestChaosShardCountFleetIdentity pins the fleet determinism contract
// under an active incident: the same scripted timeline at 1, 4 and 16
// shards must publish byte-identical merged snapshots and anomaly logs.
func TestChaosShardCountFleetIdentity(t *testing.T) {
	run := func(shards int) (merged, anoms []byte, detected int) {
		sc, err := netsim.LibraryScenario("unicast-injection", 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		n, s := shardIncidentFleet(t, func(c *shard.Config) { c.Shards = shards })
		cycle := func() {
			t.Helper()
			n.Step()
			if _, err := s.RunCycle(n.Now()); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			cycle()
		}
		if err := n.ScheduleScenario(sc); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			cycle()
		}
		if merged, err = json.Marshal(s.Merged()); err != nil {
			t.Fatal(err)
		}
		if anoms, err = json.Marshal(s.FleetAnomalies()); err != nil {
			t.Fatal(err)
		}
		return merged, anoms, len(s.FleetAnomalies())
	}

	baseMerged, baseAnoms, detected := run(1)
	if detected == 0 {
		t.Fatal("scenario produced no anomalies; the identity proof would be vacuous")
	}
	for _, shards := range []int{4, 16} {
		merged, anoms, _ := run(shards)
		if string(merged) != string(baseMerged) {
			t.Errorf("%d shards: merged fleet snapshot diverged from 1 shard", shards)
		}
		if string(anoms) != string(baseAnoms) {
			t.Errorf("%d shards: fleet anomaly log diverged from 1 shard", shards)
		}
	}
}
