# Developer entry points. `make check` is the pre-commit gate: vet plus
# the full suite under the race detector.

GO ?= go

.PHONY: build vet test race bench bench-collect chaos figures check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every benchmark: one per paper figure, ablations, micro-benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The collector benchmarks: plain CLI scrape vs the resilient path.
# The delta between the two is the retry layer's happy-path overhead.
bench-collect:
	$(GO) test -run '^$$' -bench 'BenchmarkAblationCLIScrape|BenchmarkResilientCollectHappyPath' -benchtime 3s -count 3 .

# The 220-cycle fault-injection run and the breaker lifecycle, verbosely.
chaos:
	$(GO) test -run 'TestChaos' -v .

figures:
	$(GO) run ./cmd/figures -scale quick -out out

check: vet race
