# Developer entry points. `make check` is the pre-commit gate: the full
# lint stack (gofmt + vet + mantralint) plus the suite under the race
# detector — the same gate CI runs.

GO ?= go

.PHONY: build vet fmt-check mantralint lint lint-json lint-sarif lint-baseline write-baseline test race bench bench-collect bench-archive bench-engine bench-detect bench-scale bench-store bench-smoke bench-json fuzz chaos chaos-shard figures check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The project-specific analyzers: determinism (mapiter, floatsum),
# clock injection (wallclock, globalrand), crash safety (walerr,
# waltaint), cross-function concurrency (lockheld, sharedmut, goleak),
# hot-path allocation budgets (hotalloc, hotpath) and module-wide lock
# ordering (lockorder). See DESIGN.md §8–§9 and §14 for the invariants
# and the suppression syntax. The cache directory makes warm runs
# re-analyze only packages whose content hash (self + dependency
# closure) moved; findings are byte-identical to a cold run, and
# deleting the directory forces one. Exit codes: 0 clean, 1 findings,
# 2 internal/load error — CI distinguishes "fix the code" from "fix
# the invocation" on that split.
mantralint:
	$(GO) run ./cmd/mantralint -cache .mantralint-cache ./...

# The one pre-commit lint target: formatting, vet, and the invariant
# analyzers.
lint: fmt-check vet mantralint

# Machine-readable lint: findings as a JSON array on stdout, for diffing
# runs or feeding dashboards.
lint-json:
	$(GO) run ./cmd/mantralint -json ./...

# SARIF 2.1.0 log for GitHub code-scanning upload (CI runs this; the
# file is valid — rules and all — even when the run is clean).
lint-sarif:
	$(GO) run ./cmd/mantralint -cache .mantralint-cache -sarif mantralint.sarif ./...

# Baseline-diff mode: fail only on findings absent from the committed
# snapshot, so a legacy finding can be burned down incrementally while
# no fresh violation rides in under its cover. The tree is lint-clean
# today, so the committed baseline is empty and this is equivalent to
# plain `make mantralint` until someone baselines a legacy finding.
lint-baseline:
	$(GO) run ./cmd/mantralint -cache .mantralint-cache -baseline lint-baseline.json ./...

# Snapshot the current findings as the new baseline (exits zero).
write-baseline:
	$(GO) run ./cmd/mantralint -write-baseline lint-baseline.json ./...

# -shuffle randomizes test order every run, dynamically flushing
# inter-test state dependence (the runtime complement to mapiter).
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Every benchmark: one per paper figure, ablations, micro-benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The collector benchmarks: plain CLI scrape vs the resilient path.
# The delta between the two is the retry layer's happy-path overhead.
bench-collect:
	$(GO) test -run '^$$' -bench 'BenchmarkAblationCLIScrape|BenchmarkResilientCollectHappyPath' -benchtime 3s -count 3 .

# The archive benchmarks: WAL append throughput (buffered and fsync'd)
# and cold-start recovery of a 200-cycle archive.
bench-archive:
	$(GO) test -run '^$$' -bench 'BenchmarkArchive' -benchtime 3s -count 3 .

# The cycle-engine schedule comparison: 64 skewed targets, pipelined vs
# barrier vs serial at the same worker-pool size. Pipelined must win.
bench-engine:
	$(GO) test -run '^$$' -bench 'BenchmarkCycleEngine' -benchtime 10x -count 3 .

# One iteration of every benchmark in every package — the CI smoke pass
# that keeps benchmarks compiling and running without timing anything.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The smoke pass plus the full-module lint benchmark, captured as
# timestamp-free JSON so runs can be diffed byte-for-byte.
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... | $(GO) run ./cmd/benchjson -out BENCH_lint.json
	@echo "wrote BENCH_lint.json"

# Short fuzz passes over the dump validator, the pre-processor, and the
# lint fact-summary extractor (no panics; byte-identical summaries
# across independent parse/check passes).
fuzz:
	$(GO) test ./internal/core/collect -fuzz FuzzValidateDump -fuzztime 30s
	$(GO) test ./internal/core/collect -fuzz FuzzPreprocess -fuzztime 30s
	$(GO) test ./internal/lint -fuzz FuzzSummaryExtract -fuzztime 30s

# The chaos suite under the race detector with shuffled test order: the
# 220-cycle fault-injection run, the breaker lifecycle, and the scripted
# incident library's detection-latency proofs (every scenario under
# clean and degraded collection, plus the serial-vs-pipelined anomaly
# byte-identity check).
chaos:
	$(GO) test -race -shuffle=on -run 'TestChaos' -v .

# The incident detection-latency benchmark, captured as timestamp-free
# JSON: cycles-to-detect per library scenario.
bench-detect:
	$(GO) test -run '^$$' -bench 'BenchmarkDetectLatency' -benchtime 1x . | $(GO) run ./cmd/benchjson -out BENCH_detect.json
	@echo "wrote BENCH_detect.json"

# The sharded-collection scale benchmark, captured as timestamp-free
# JSON: one supervised fleet cycle over a ~5k-router topology at 1, 4
# and 16 shards.
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkScaleCycle' -benchtime 1x . | $(GO) run ./cmd/benchjson -out BENCH_scale.json
	@echo "wrote BENCH_scale.json"

# The series-store benchmarks, captured as timestamp-free JSON: append
# throughput, compression ratio over ten years of cycles (floor: 5x vs
# raw CSV), and cold mirror query latency (floor: far under one
# 30-minute cycle).
bench-store:
	$(GO) test -run '^$$' -bench 'BenchmarkStore' -benchtime 1x . | $(GO) run ./cmd/benchjson -out BENCH_store.json
	@echo "wrote BENCH_store.json"

# The shard-supervisor chaos proofs under the race detector: worker
# kills during active incidents (no lost detections, no duplicate or
# out-of-order WAL frames) and fleet-output byte-identity at 1/4/16
# shards.
chaos-shard:
	$(GO) test -race -shuffle=on -run 'TestChaosShard' -v .

figures:
	$(GO) run ./cmd/figures -scale quick -out out

# vet + lint + race: lint subsumes vet, so this is the full CI gate.
check: lint race
