package mantra_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	mantra "repro"
	"repro/internal/core/output"
	"repro/internal/core/shard"
	"repro/internal/experiments"
)

// figureBytes renders a figure's CSV and ASCII chart into one buffer.
func figureBytes(t *testing.T, fig experiments.FigureResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fig.RenderASCII(&buf, 110, 16); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFiguresStreamingEquivalence is the seed-equivalence proof for the
// figure pipeline's move onto the compressed store: every usage figure
// rendered from streamed store queries is byte-identical to the legacy
// post-hoc ring read — and stays identical after the hot rings are
// bounded, which the post-hoc path cannot survive.
func TestFiguresStreamingEquivalence(t *testing.T) {
	r, err := experiments.NewRunner(experiments.UsageConfig(experiments.Quick))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(nil); err != nil {
		t.Fatal(err)
	}
	figs := map[string]func() experiments.FigureResult{
		"fig3": r.Figure3, "fig4": r.Figure4, "fig5": r.Figure5,
		"fig6": r.Figure6, "fig7": r.Figure7,
	}
	streamed := map[string][]byte{}
	for id, fig := range figs {
		r.PostHoc = false
		streamed[id] = figureBytes(t, fig())
		r.PostHoc = true
		if posthoc := figureBytes(t, fig()); !bytes.Equal(streamed[id], posthoc) {
			t.Errorf("%s: streamed render differs from post-hoc ring read", id)
		}
		r.PostHoc = false
	}

	// Bound the hot rings to near the detection floor: the rings shrink,
	// the streamed figures must not move a byte.
	r.Mon.SetSeriesRetain(10)
	for id, fig := range figs {
		if got := figureBytes(t, fig()); !bytes.Equal(streamed[id], got) {
			t.Errorf("%s: streamed render changed after bounding the hot rings", id)
		}
	}
}

// TestQueryEndpointShardInvariance pins the /query contract at the HTTP
// layer: the same scripted incident timeline served at 1, 4 and 16
// shards answers every query shape with byte-identical JSON. The split
// per-shard execution plus Assemble must be indistinguishable from one
// store holding everything.
func TestQueryEndpointShardInvariance(t *testing.T) {
	queries := []string{
		"/query?metric=routes&op=range",
		"/query?metric=routes&op=range&tier=10",
		"/query?metric=sessions&op=avg",
		"/query?metric=sessions&op=rate&target=fixw",
		"/query?metric=routes&op=topk&k=2&by=max",
		"/query?metric=participants&op=count",
		"/series/fixw/routes?limit=5",
	}
	run := func(shards int) map[string][]byte {
		n, s := shardIncidentFleet(t, func(c *shard.Config) { c.Shards = shards })
		for i := 0; i < 12; i++ {
			n.Step()
			if _, err := s.RunCycle(n.Now()); err != nil {
				t.Fatal(err)
			}
		}
		srv := output.NewServer(s.FleetProc())
		srv.SetSeries(s.SeriesView)
		srv.SetQuery(s.QueryFleet)
		hs := httptest.NewServer(srv)
		defer hs.Close()
		out := map[string][]byte{}
		for _, q := range queries {
			resp, err := hs.Client().Get(hs.URL + q)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("%d shards: GET %s: %s: %s", shards, q, resp.Status, body)
			}
			out[q] = body
		}
		return out
	}

	base := run(1)
	for _, q := range queries {
		if len(base[q]) == 0 {
			t.Fatalf("1 shard: empty response for %s", q)
		}
	}
	for _, shards := range []int{4, 16} {
		got := run(shards)
		for _, q := range queries {
			if !bytes.Equal(base[q], got[q]) {
				t.Errorf("%d shards: %s diverged from 1 shard:\n1:  %s\n%d: %s",
					shards, q, base[q], shards, got[q])
			}
		}
	}
}

// storeQueries captures the store answers an operator would compare
// across a crash.
func storeQueries(t *testing.T, m *mantra.Monitor) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, q := range []mantra.Query{
		{Metric: "routes", Op: "range"},
		{Metric: "routes", Op: "range", Tier: 10},
		{Metric: "sessions", Op: "avg"},
		{Metric: "sessions", Op: "topk", K: 1, By: "max"},
		{Metric: "participants", Op: "rate", Targets: []string{"fixw"}},
	} {
		res, err := m.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out[string(q.Metric)+"/"+string(q.Op)] = b
	}
	return out
}

// TestArchiveStoreCrashRecovery extends the crash test to the series
// store: after a crash with a corrupted disk mirror, the recovered
// monitor answers every query byte-identically to the pre-crash
// monitor, and the mirror self-heals.
func TestArchiveStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	n, m1 := newMonitoredNetwork(t)
	if _, err := m1.EnableArchive(mantra.ArchiveConfig{Dir: dir, CheckpointEvery: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		n.Step()
		if _, err := m1.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	want := storeQueries(t, m1)
	// Crash: no CloseArchive. Corrupt the block mirror's tail — the torn
	// write the next process must repair.
	segs, err := filepath.Glob(filepath.Join(dir, "tsdb", "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 5 {
			if err := os.Truncate(seg, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		}
	}

	m2 := mantra.New()
	rewire(m2, n, "fixw", "ucsb-r1")
	if _, err := m2.EnableArchive(mantra.ArchiveConfig{Dir: dir, CheckpointEvery: 3, Resume: true}); err != nil {
		t.Fatal(err)
	}
	if st := m2.ArchiveStatus(); st.MirrorError != "" {
		t.Fatalf("mirror error after recovery: %s", st.MirrorError)
	}
	got := storeQueries(t, m2)
	for name, w := range want {
		if !bytes.Equal(w, got[name]) {
			t.Errorf("query %s diverged across crash:\npre:  %s\npost: %s", name, w, got[name])
		}
	}

	// The recovered monitor keeps collecting and the store keeps growing.
	n.Step()
	if _, err := m2.RunCycle(n.Now()); err != nil {
		t.Fatal(err)
	}
	res, err := m2.Query(mantra.Query{Metric: "routes", Op: "count", Targets: []string{"fixw"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets[0].Agg == nil || res.Targets[0].Agg.Count != 8 {
		t.Fatalf("post-resume count = %+v, want 8", res.Targets[0].Agg)
	}
	if err := m2.CloseArchive(n.Now()); err != nil {
		t.Fatal(err)
	}
}
