// Exchange-point monitoring across the infrastructure transition: the
// FIXW scenario of the paper in miniature. The example monitors FIXW
// while every leaf domain migrates from DVMRP tunnels to native PIM-SM /
// MBGP / MSDP, and prints the before/after contrast the paper reports —
// participants collapse, senders persist, session availability
// stabilizes.
//
//	go run ./examples/exchange
package main

import (
	"fmt"
	"log"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	tcfg := topo.DefaultInternetConfig()
	tcfg.NumDomains = 8
	inet := topo.BuildInternet(tcfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	net := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := net.Track("fixw"); err != nil {
		log.Fatal(err)
	}

	fixw := net.Router("fixw")
	fixw.Password = "mantra"
	m := mantra.New()
	m.AddTarget(mantra.Target{
		Name:     "fixw",
		Dialer:   collect.PipeDialer{Router: fixw},
		Password: "mantra",
		Prompt:   "fixw> ",
	})

	run := func(days int, label string) (sessions, participants, senders float64) {
		cycles := days * 48
		var s, p, snd float64
		for i := 0; i < cycles; i++ {
			net.Step()
			stats, err := m.RunCycle(net.Now())
			if err != nil {
				log.Fatal(err)
			}
			s += float64(stats[0].Sessions)
			p += float64(stats[0].Participants)
			snd += float64(stats[0].Senders)
		}
		n := float64(cycles)
		fmt.Printf("%-22s sessions=%6.1f participants=%7.1f senders=%5.1f (means over %d days)\n",
			label, s/n, p/n, snd/n, days)
		return s / n, p / n, snd / n
	}

	fmt.Println("== before the transition: FIXW is the MBone core router ==")
	_, pb, sb := run(5, "DVMRP tunnel world")

	fmt.Println("\n== transition: every leaf domain migrates to native sparse mode ==")
	for _, d := range inet.Topo.Domains() {
		if d.Name != "ucsb" {
			net.TransitionDomain(d.Name)
			fmt.Printf("  %s -> PIM-SM (RP %s)\n", d.Name, inet.Topo.Router(d.Border()).Name)
		}
	}
	fmt.Printf("  FIXW role: %s\n\n", inet.FIXW.Mode)

	fmt.Println("== after: sparse mode filters state with no downstream receivers ==")
	_, pa, sa := run(5, "native sparse world")

	fmt.Println()
	fmt.Printf("participants at FIXW: %.0f -> %.0f (%.0f%% drop: passive sources filtered)\n",
		pb, pa, 100*(1-pa/pb))
	fmt.Printf("senders at FIXW:      %.1f -> %.1f (content still crosses the border)\n", sb, sa)
	fmt.Printf("sender/participant:   %.3f -> %.3f (the paper's rising ratio, Fig 6)\n", sb/pb, sa/pa)

	// Post-transition, FIXW's CLI also shows the new protocols' state.
	fmt.Println("\n== FIXW MSDP SA cache (first lines) ==")
	out := fixw.Execute("show ip msdp sa-cache")
	for i, line := range splitLines(out, 6) {
		fmt.Println("  " + line)
		_ = i
	}
}

func splitLines(s string, n int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < n; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
