// Campus monitoring over a real TCP hop: the simulated campus gateway
// serves its CLI on a loopback socket, and Mantra collects through it
// exactly as it would against a remote router — login, expect, dump.
// The example then demonstrates off-line analysis from the delta log:
// reconstructing an earlier cycle's route table.
//
//	go run ./examples/campus
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	mantra "repro"
	"repro/internal/addr"
	"repro/internal/core/collect"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	campus := topo.BuildCampus(topo.CampusConfig{
		Name:     "campus",
		Base:     addr.MustParsePrefix("172.20.0.0/16"),
		Internal: 3,
		Subnets:  12,
	})
	wl := workload.New(workload.DefaultConfig(), campus)
	sim := netsim.NewStandalone(campus, wl, netsim.DefaultConfig())
	if err := sim.Track("campus-gw"); err != nil {
		log.Fatal(err)
	}

	// Serve the gateway CLI on a real TCP socket.
	gw := sim.Router("campus-gw")
	gw.Password = "s3cret"
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go func() { _ = gw.ServeTCP(l) }()
	fmt.Printf("campus-gw CLI on %s\n", l.Addr())

	m := mantra.New()
	m.AddTarget(mantra.Target{
		Name:     "campus-gw",
		Dialer:   collect.TCPDialer{Addr: l.Addr().String()},
		Password: "s3cret",
		Prompt:   "campus-gw> ",
		Timeout:  5 * time.Second,
	})

	// Half a simulated day of monitoring over TCP.
	for i := 0; i < 24; i++ {
		sim.Step()
		if _, err := m.RunCycle(sim.Now()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("collected %d cycles over TCP\n\n", m.Log().Cycles("campus-gw"))

	// Off-line analysis: reconstruct the route table as it was at cycle
	// 3 and compare with the latest cycle.
	early, err := m.Log().ReconstructRoutes("campus-gw", 3)
	if err != nil {
		log.Fatal(err)
	}
	late, err := m.Log().ReconstructRoutes("campus-gw", m.Log().Cycles("campus-gw")-1)
	if err != nil {
		log.Fatal(err)
	}
	at3, _ := m.Log().At("campus-gw", 3)
	fmt.Printf("route table at cycle 3 (%s): %d routes\n", at3.Format("15:04"), len(early))
	fmt.Printf("route table at last cycle:    %d routes\n", len(late))

	// The reconstruction matches the live router byte for byte.
	live := m.Latest("campus-gw").Routes
	match := len(live) == len(late)
	if match {
		for i := range live {
			if live[i] != late[i] {
				match = false
				break
			}
		}
	}
	fmt.Printf("reconstruction matches live table: %v\n", match)

	d, f, ratio := m.Log().StorageStats("campus-gw")
	fmt.Printf("storage: %d delta entries vs %d full entries (%.1fx)\n", d, f, ratio)
}
