// Topology discovery and path tracing: the mwatch/mtrace side of the
// paper's tool survey. The example crawls the DVMRP cloud from FIXW by
// recursively querying router CLIs for their neighbors, then runs an
// mtrace along a live session's distribution tree.
//
//	go run ./examples/discovery
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/discover"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	tcfg := topo.DefaultInternetConfig()
	tcfg.NumDomains = 6
	inet := topo.BuildInternet(tcfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-gw", "ucsb-r1"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.Step()
	}

	// mwatch-style crawl: every router is reachable by its CLI.
	dialers := func(name string) (collect.Dialer, bool) {
		r := n.Router(name)
		if r == nil {
			return nil, false
		}
		r.Password = "mantra"
		return collect.PipeDialer{Router: r}, true
	}
	m := discover.Crawl("fixw", dialers, discover.Config{Password: "mantra", Timeout: 5 * time.Second})
	fmt.Printf("discovered %d multicast routers from fixw:\n", len(m.Order))
	for i, name := range m.Order {
		node := m.Nodes[name]
		fmt.Printf("  %2d. %-12s neighbors=%d\n", i+1, name, len(node.Neighbors))
	}
	links := m.Links()
	fmt.Printf("%d distinct links; first few:\n", len(links))
	for i, l := range links {
		if i == 5 {
			break
		}
		fmt.Printf("  %s <-> %s\n", l[0], l[1])
	}

	// mtrace along a live flow: pick a sender and a remote member.
	for _, s := range wl.Sessions() {
		for _, snd := range s.Senders() {
			for _, mem := range s.MemberList() {
				if mem.Host == snd.Host || mem.Edge == snd.Edge {
					continue
				}
				hops, err := n.Mtrace(snd.Host, s.Group, mem.Host)
				if err != nil {
					continue
				}
				fmt.Println()
				fmt.Print(netsim.FormatTrace(snd.Host, s.Group, hops))
				return
			}
		}
	}
	fmt.Println("no cross-router flow live at this instant")
}
