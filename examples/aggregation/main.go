// Multi-vantage aggregation: the enhancement the paper's conclusion
// announces. After the sparse-mode transition no single router sees
// global usage, so Mantra collects several routers concurrently and
// merges their views. The example monitors FIXW, the UCSB router and a
// native border, and shows the combined coverage.
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	tcfg := topo.DefaultInternetConfig()
	tcfg.NumDomains = 8
	inet := topo.BuildInternet(tcfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	net := netsim.New(inet, wl, netsim.DefaultConfig())
	vantages := []string{"fixw", "ucsb-r1", "dom00-gw", "dom03-gw"}
	if err := net.Track(vantages...); err != nil {
		log.Fatal(err)
	}

	// Settle, then migrate everything but UCSB to native sparse mode.
	for i := 0; i < 6; i++ {
		net.Step()
	}
	for _, d := range inet.Topo.Domains() {
		if d.Name != "ucsb" {
			net.TransitionDomain(d.Name)
		}
	}

	m := mantra.New()
	m.EnableAggregation()
	for _, name := range vantages {
		r := net.Router(name)
		r.Password = "mantra"
		m.AddTarget(mantra.Target{
			Name:     name,
			Dialer:   collect.PipeDialer{Router: r},
			Password: "mantra",
			Prompt:   name + "> ",
		})
	}

	fmt.Println("post-transition monitoring, concurrent collection with aggregation:")
	fmt.Printf("%-12s %10s %14s %9s\n", "vantage", "sessions", "participants", "senders")
	const cycles = 12
	sums := make(map[string]*mantra.CycleStats)
	for i := 0; i < cycles; i++ {
		net.Step()
		stats, err := m.RunCycleConcurrent(net.Now())
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range stats {
			acc := sums[st.Target]
			if acc == nil {
				acc = &mantra.CycleStats{Target: st.Target}
				sums[st.Target] = acc
			}
			acc.Sessions += st.Sessions
			acc.Participants += st.Participants
			acc.Senders += st.Senders
		}
	}
	order := append(append([]string{}, vantages...), mantra.AggregateTarget)
	for _, name := range order {
		acc := sums[name]
		if acc == nil {
			continue
		}
		fmt.Printf("%-12s %10.1f %14.1f %9.1f\n", name,
			float64(acc.Sessions)/cycles, float64(acc.Participants)/cycles, float64(acc.Senders)/cycles)
	}
	fmt.Println("\nthe aggregate row dominates every single vantage — the global view")
	fmt.Println("the paper says becomes necessary once sparse mode localizes state.")
}
