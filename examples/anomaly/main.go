// Anomaly detection: reproduces Figure 9 — the October 14 1998 incident
// in which unicast routes leaked into the UCSB mrouted's DVMRP table.
// Mantra's route monitor watches the table size and flags the step jump.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/core/output"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	tcfg := topo.DefaultInternetConfig()
	tcfg.NumDomains = 6
	inet := topo.BuildInternet(tcfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	ncfg := netsim.DefaultConfig()
	ncfg.Cycle = 15 * time.Minute
	net := netsim.New(inet, wl, ncfg)
	if err := net.Track("ucsb-r1"); err != nil {
		log.Fatal(err)
	}

	r := net.Router("ucsb-r1")
	r.Password = "mantra"
	m := mantra.New()
	m.AddTarget(mantra.Target{
		Name:     "ucsb-r1",
		Dialer:   collect.PipeDialer{Router: r},
		Password: "mantra",
		Prompt:   "ucsb-r1> ",
	})

	// The fault: at 14:00, ~600 unicast /24s leak into the DVMRP table
	// for two hours (a misconfigured route redistribution).
	injectAt := net.Now().Add(14 * time.Hour)
	if err := net.InjectUnicastRoutes("ucsb-gw", 600, injectAt, 2*time.Hour); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled unicast route injection at %s\n\n", injectAt.Format("15:04"))

	// Monitor one day at 15-minute cycles.
	for i := 0; i < 24*4; i++ {
		net.Step()
		if _, err := m.RunCycle(net.Now()); err != nil {
			log.Fatal(err)
		}
	}

	// Plot the day's route counts (the Figure 9 chart).
	g := output.NewGraph("DVMRP routes at ucsb-r1, October 14 1998", "routes")
	g.Overlay("ucsb-r1", m.Series("ucsb-r1", mantra.MetricRoutes))
	if err := g.RenderASCII(os.Stdout, 96, 16); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	anomalies := m.Anomalies()
	if len(anomalies) == 0 {
		fmt.Println("no anomalies detected (unexpected)")
		return
	}
	for _, a := range anomalies {
		fmt.Printf("DETECTED %s at %s on %s: %s\n",
			a.Kind, a.At.Format("15:04"), a.Target, a.Detail)
	}
}
