// Quickstart: monitor a small simulated campus multicast network for a
// day and print what Mantra sees — the minimal end-to-end use of the
// public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	mantra "repro"
	"repro/internal/addr"
	"repro/internal/core/collect"
	"repro/internal/core/output"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	// 1. A campus network: one gateway, two internal routers, eight
	// subnets, all running DVMRP (the UCSB shape of the paper).
	campus := topo.BuildCampus(topo.CampusConfig{
		Name: "campus",
		Base: addr.MustParsePrefix("10.10.0.0/16"),
	})
	wl := workload.New(workload.DefaultConfig(), campus)
	net := netsim.NewStandalone(campus, wl, netsim.DefaultConfig())
	if err := net.Track("campus-gw"); err != nil {
		log.Fatal(err)
	}

	// 2. A monitor logging into the gateway's CLI each cycle.
	gw := net.Router("campus-gw")
	gw.Password = "public"
	m := mantra.New()
	m.AddTarget(mantra.Target{
		Name:     "campus-gw",
		Dialer:   collect.PipeDialer{Router: gw},
		Password: "public",
		Prompt:   "campus-gw> ",
	})

	// 3. Run 48 monitoring cycles (one simulated day at 30 minutes per
	// cycle), printing the cycle statistics.
	fmt.Println("time   sessions participants senders bandwidth(kbps) routes")
	for i := 0; i < 48; i++ {
		net.Step()
		stats, err := m.RunCycle(net.Now())
		if err != nil {
			log.Fatal(err)
		}
		st := stats[0]
		if i%6 == 0 {
			fmt.Printf("%s  %4d     %4d       %4d    %8.1f     %5d\n",
				net.Now().Format("15:04"), st.Sessions, st.Participants,
				st.Senders, st.BandwidthKbps, st.Routes)
		}
	}

	// 4. Inspect the busiest sessions at the latest cycle through the
	// interactive-table interface.
	sn := m.Latest("campus-gw")
	tb := output.NewTable("busiest sessions", "group", "density", "kbps")
	for _, s := range mantra.BusiestSessions(sn, 8) {
		_ = tb.AddRow(
			output.Str(s.Group.String()),
			output.Num(float64(s.Density)),
			output.Num(s.TotalRateKbps),
		)
	}
	fmt.Println()
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 5. Delta-logging effectiveness over the day.
	d, f, ratio := m.Log().StorageStats("campus-gw")
	fmt.Printf("\ndelta log: %d entries stored vs %d full-snapshot entries (%.1fx saved)\n", d, f, ratio)
}
