package mantra_test

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// newMonitoredNetwork wires a Monitor to a small simulated internetwork.
func newMonitoredNetwork(t *testing.T) (*netsim.Network, *mantra.Monitor) {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-r1"); err != nil {
		t.Fatal(err)
	}
	m := mantra.New()
	for _, name := range []string{"fixw", "ucsb-r1"} {
		r := n.Router(name)
		r.Password = "pw"
		m.AddTarget(mantra.Target{
			Name:     name,
			Dialer:   collect.PipeDialer{Router: r},
			Password: "pw",
			Prompt:   name + "> ",
		})
	}
	return n, m
}

func TestMonitorRunCycle(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	if got := m.Targets(); len(got) != 2 || got[0] != "fixw" {
		t.Fatalf("targets = %v", got)
	}
	var last []mantra.CycleStats
	for i := 0; i < 5; i++ {
		n.Step()
		stats, err := m.RunCycle(n.Now())
		if err != nil {
			t.Fatal(err)
		}
		last = stats
	}
	if len(last) != 2 {
		t.Fatalf("stats = %d targets", len(last))
	}
	fixw := last[0]
	if fixw.Target != "fixw" || fixw.Sessions == 0 || fixw.Participants == 0 {
		t.Errorf("fixw stats = %+v", fixw)
	}
	if fixw.Routes < 100 {
		t.Errorf("routes = %d", fixw.Routes)
	}
	if m.Series("fixw", mantra.MetricSessions).Len() != 5 {
		t.Error("series not extended per cycle")
	}
	if m.Latest("fixw") == nil || m.Latest("ghost") != nil {
		t.Error("Latest wrong")
	}
	if m.Log().Cycles("fixw") != 5 {
		t.Errorf("logged cycles = %d", m.Log().Cycles("fixw"))
	}
}

func TestMonitorClassificationConsistency(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	for i := 0; i < 6; i++ {
		n.Step()
	}
	stats, err := m.RunCycle(n.Now())
	if err != nil {
		t.Fatal(err)
	}
	st := stats[0]
	if st.Senders > st.Participants {
		t.Error("senders exceed participants")
	}
	if st.ActiveSessions > st.Sessions {
		t.Error("active sessions exceed sessions")
	}
	if st.SavedFactor < 1 && st.BandwidthKbps > 0 {
		t.Errorf("saved factor %f < 1", st.SavedFactor)
	}
}

func TestMonitorHTTPEndToEnd(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	for i := 0; i < 3; i++ {
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	for _, path := range []string{
		"/series/fixw/sessions",
		"/graph/fixw/routes",
		"/tables/busiest-fixw",
		"/tables/senders-fixw",
		"/tables/routes-fixw",
		"/anomalies",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s -> %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestMonitorFailedTargetDegrades(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	m.SetCollectPolicy(collect.Policy{
		MaxAttempts: 2,
		Sleep:       func(time.Duration) {},
	})
	m.AddTarget(mantra.Target{
		Name:    "dead",
		Dialer:  collect.TCPDialer{Addr: "127.0.0.1:1", Timeout: 100 * time.Millisecond},
		Prompt:  "dead> ",
		Timeout: 100 * time.Millisecond,
	})
	n.Step()
	stats, err := m.RunCycle(n.Now())
	if err != nil {
		t.Fatalf("dead target aborted the cycle: %v", err)
	}
	if len(stats) != 2 {
		t.Errorf("live targets collected = %d, want 2", len(stats))
	}
	results := m.LastResults()
	if len(results) != 3 {
		t.Fatalf("results = %d targets, want 3", len(results))
	}
	dead := results[2]
	if dead.Target != "dead" || dead.Status != collect.StatusDegraded || dead.Err == nil {
		t.Errorf("dead result = %+v", dead)
	}
	if dead.Attempts != 2 {
		t.Errorf("dead attempts = %d, want 2", dead.Attempts)
	}
	health := m.Health()
	if len(health) != 3 {
		t.Fatalf("health = %d targets, want 3", len(health))
	}
	if h := health[2]; h.ConsecutiveFailures != 1 || h.LastError == "" {
		t.Errorf("dead health = %+v", h)
	}
	if h := health[0]; h.ConsecutiveFailures != 0 || h.LastStatus != collect.StatusOK {
		t.Errorf("fixw health = %+v", h)
	}
	// The dead target's series must carry an explicit gap marker.
	if s := m.Series("dead", mantra.MetricSessions); s == nil || s.GapCount() != 1 || s.Len() != 0 {
		t.Errorf("dead series gaps wrong: %+v", s)
	}
	if s := m.Series("fixw", mantra.MetricSessions); s.GapCount() != 0 || s.Len() != 1 {
		t.Errorf("fixw series has spurious gaps: %+v", s)
	}
}

func TestMonitorReRegistrationResetsBreaker(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	m.SetCollectPolicy(collect.Policy{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  24 * time.Hour,
		Sleep:            func(time.Duration) {},
	})
	m.AddTarget(mantra.Target{
		Name:    "flaky",
		Dialer:  collect.TCPDialer{Addr: "127.0.0.1:1", Timeout: 50 * time.Millisecond},
		Prompt:  "flaky> ",
		Timeout: 50 * time.Millisecond,
	})
	for i := 0; i < 2; i++ {
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if h := m.Health()[2]; h.Breaker != collect.BreakerOpen {
		t.Fatalf("setup: flaky breaker = %+v, want open", h)
	}

	// Re-registering the name — say the operator swapped in a working
	// device — must replace in place and start the ledger fresh, not
	// leave the replacement stuck behind the old device's cooldown.
	r := n.Router("dom01-gw")
	r.Password = "pw"
	m.AddTarget(mantra.Target{
		Name:     "flaky",
		Dialer:   collect.PipeDialer{Router: r},
		Password: "pw",
		Prompt:   "dom01-gw> ",
		Timeout:  5 * time.Second,
	})
	if got := m.Targets(); len(got) != 3 || got[2] != "flaky" {
		t.Fatalf("re-registration duplicated the target: %v", got)
	}
	if h := m.Health()[2]; h.Breaker != collect.BreakerClosed || h.ConsecutiveFailures != 0 {
		t.Fatalf("breaker survived re-registration: %+v", h)
	}
	n.Step()
	if _, err := m.RunCycle(n.Now()); err != nil {
		t.Fatal(err)
	}
	hv := m.HealthView()
	row := hv.Targets[2]
	if row.Target != "flaky" || row.LastStatus != collect.StatusOK || row.TotalFailures != 0 {
		t.Errorf("replacement not collecting cleanly: %+v", row)
	}
	// Gap visibility survives the reset: the two failed cycles stay on
	// the series record, and the fresh success is timestamped.
	if row.GapCount != 2 {
		t.Errorf("gap count = %d, want the 2 failed cycles", row.GapCount)
	}
	if !row.LastSuccess.Equal(n.Now()) {
		t.Errorf("last success = %v, want %v", row.LastSuccess, n.Now())
	}

	if !m.RemoveTarget("flaky") {
		t.Fatal("RemoveTarget said flaky was not registered")
	}
	if m.RemoveTarget("flaky") {
		t.Fatal("second RemoveTarget should report absence")
	}
	if got := m.Targets(); len(got) != 2 {
		t.Fatalf("targets after removal = %v", got)
	}
	if rows := m.HealthView().Targets; len(rows) != 2 {
		t.Fatalf("/health still lists the removed target: %+v", rows)
	}
	// History outlives membership: the series (and its gaps) remain.
	if s := m.Series("flaky", mantra.MetricRoutes); s == nil || s.GapCount() != 2 {
		t.Errorf("flaky series lost after removal: %+v", s)
	}
}

func TestMonitorAllTargetsFailed(t *testing.T) {
	m := mantra.New()
	m.SetCollectPolicy(collect.Policy{
		MaxAttempts: 1,
		Sleep:       func(time.Duration) {},
	})
	m.AddTarget(mantra.Target{
		Name:    "dead",
		Dialer:  collect.TCPDialer{Addr: "127.0.0.1:1", Timeout: 100 * time.Millisecond},
		Prompt:  "dead> ",
		Timeout: 100 * time.Millisecond,
	})
	stats, err := m.RunCycle(time.Unix(0, 0).UTC())
	if !errors.Is(err, mantra.ErrAllTargetsFailed) {
		t.Fatalf("err = %v, want ErrAllTargetsFailed", err)
	}
	if len(stats) != 0 {
		t.Errorf("stats = %d, want 0", len(stats))
	}
	if !strings.Contains(err.Error(), "mantra:") {
		t.Errorf("error not wrapped: %v", err)
	}
}

func TestMonitorHealthEndpoint(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	n.Step()
	if _, err := m.RunCycle(n.Now()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/health -> %d", resp.StatusCode)
	}
	var health mantra.HealthView
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if len(health.Targets) != 2 {
		t.Fatalf("health = %d targets, want 2", len(health.Targets))
	}
	if h := health.Targets[0]; h.Target != "fixw" || h.Breaker != collect.BreakerClosed || h.TotalCycles != 1 {
		t.Errorf("fixw health = %+v", h)
	}
	if health.Anomalies.Total != 0 || health.Anomalies.Open != 0 {
		t.Errorf("anomaly rollup = %+v", health.Anomalies)
	}
}

func TestMonitorDeltaLogReconstruction(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	for i := 0; i < 4; i++ {
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// The reconstructed latest cycle must equal the live snapshot.
	sn := m.Latest("fixw")
	routes, err := m.Log().ReconstructRoutes("fixw", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != len(sn.Routes) {
		t.Errorf("reconstructed %d routes, snapshot has %d", len(routes), len(sn.Routes))
	}
	pairs, err := m.Log().ReconstructPairs("fixw", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(sn.Pairs) {
		t.Errorf("reconstructed %d pairs, snapshot has %d", len(pairs), len(sn.Pairs))
	}
	// Delta storage must beat full snapshots on the route table.
	d, f, ratio := m.Log().StorageStats("fixw")
	if d >= f {
		t.Errorf("deltas (%d) not smaller than full (%d)", d, f)
	}
	if ratio <= 1 {
		t.Errorf("compression ratio = %f", ratio)
	}
}
