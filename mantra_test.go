package mantra_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// newMonitoredNetwork wires a Monitor to a small simulated internetwork.
func newMonitoredNetwork(t *testing.T) (*netsim.Network, *mantra.Monitor) {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-r1"); err != nil {
		t.Fatal(err)
	}
	m := mantra.New()
	for _, name := range []string{"fixw", "ucsb-r1"} {
		r := n.Router(name)
		r.Password = "pw"
		m.AddTarget(mantra.Target{
			Name:     name,
			Dialer:   collect.PipeDialer{Router: r},
			Password: "pw",
			Prompt:   name + "> ",
		})
	}
	return n, m
}

func TestMonitorRunCycle(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	if got := m.Targets(); len(got) != 2 || got[0] != "fixw" {
		t.Fatalf("targets = %v", got)
	}
	var last []mantra.CycleStats
	for i := 0; i < 5; i++ {
		n.Step()
		stats, err := m.RunCycle(n.Now())
		if err != nil {
			t.Fatal(err)
		}
		last = stats
	}
	if len(last) != 2 {
		t.Fatalf("stats = %d targets", len(last))
	}
	fixw := last[0]
	if fixw.Target != "fixw" || fixw.Sessions == 0 || fixw.Participants == 0 {
		t.Errorf("fixw stats = %+v", fixw)
	}
	if fixw.Routes < 100 {
		t.Errorf("routes = %d", fixw.Routes)
	}
	if m.Series("fixw", mantra.MetricSessions).Len() != 5 {
		t.Error("series not extended per cycle")
	}
	if m.Latest("fixw") == nil || m.Latest("ghost") != nil {
		t.Error("Latest wrong")
	}
	if m.Log().Cycles("fixw") != 5 {
		t.Errorf("logged cycles = %d", m.Log().Cycles("fixw"))
	}
}

func TestMonitorClassificationConsistency(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	for i := 0; i < 6; i++ {
		n.Step()
	}
	stats, err := m.RunCycle(n.Now())
	if err != nil {
		t.Fatal(err)
	}
	st := stats[0]
	if st.Senders > st.Participants {
		t.Error("senders exceed participants")
	}
	if st.ActiveSessions > st.Sessions {
		t.Error("active sessions exceed sessions")
	}
	if st.SavedFactor < 1 && st.BandwidthKbps > 0 {
		t.Errorf("saved factor %f < 1", st.SavedFactor)
	}
}

func TestMonitorHTTPEndToEnd(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	for i := 0; i < 3; i++ {
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	for _, path := range []string{
		"/series/fixw/sessions",
		"/graph/fixw/routes",
		"/tables/busiest-fixw",
		"/tables/senders-fixw",
		"/tables/routes-fixw",
		"/anomalies",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s -> %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestMonitorFailedTargetAborts(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	m.AddTarget(mantra.Target{
		Name:    "dead",
		Dialer:  collect.TCPDialer{Addr: "127.0.0.1:1", Timeout: 100 * time.Millisecond},
		Prompt:  "dead> ",
		Timeout: 100 * time.Millisecond,
	})
	n.Step()
	stats, err := m.RunCycle(n.Now())
	if err == nil {
		t.Fatal("expected error from dead target")
	}
	if len(stats) != 2 {
		t.Errorf("live targets collected = %d, want 2", len(stats))
	}
	if !strings.Contains(err.Error(), "mantra:") {
		t.Errorf("error not wrapped: %v", err)
	}
}

func TestMonitorDeltaLogReconstruction(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	for i := 0; i < 4; i++ {
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// The reconstructed latest cycle must equal the live snapshot.
	sn := m.Latest("fixw")
	routes, err := m.Log().ReconstructRoutes("fixw", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != len(sn.Routes) {
		t.Errorf("reconstructed %d routes, snapshot has %d", len(routes), len(sn.Routes))
	}
	pairs, err := m.Log().ReconstructPairs("fixw", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(sn.Pairs) {
		t.Errorf("reconstructed %d pairs, snapshot has %d", len(pairs), len(sn.Pairs))
	}
	// Delta storage must beat full snapshots on the route table.
	d, f, ratio := m.Log().StorageStats("fixw")
	if d >= f {
		t.Errorf("deltas (%d) not smaller than full (%d)", d, f)
	}
	if ratio <= 1 {
		t.Errorf("compression ratio = %f", ratio)
	}
}
