// Package mantra is the public API of the Mantra multicast monitoring
// system, a reproduction of:
//
//	P. Rajvaidya and K. C. Almeroth, "A Router-Based Technique for
//	Monitoring the Next-Generation of Internet Multicast Protocols",
//	ICPP 2001.
//
// Mantra monitors multicast at the network layer: each monitoring cycle
// it logs into the configured routers, dumps their internal tables
// (DVMRP routes, the multicast forwarding cache, IGMP/PIM/MSDP/MBGP
// state), normalizes the dumps into its local Pair/Participant/Session/
// Route tables, logs deltas for off-line analysis, updates the result
// time series, and refreshes the interactive summary tables served over
// HTTP.
//
// A Monitor drives the five modules of the paper's design:
// Data Collector → Router-Table Processor → Data Logger → Data Processor
// → Output Interface.
//
//	m := mantra.New()
//	m.AddTarget(mantra.Target{
//		Name:     "fixw",
//		Dialer:   collect.TCPDialer{Addr: "198.32.233.1:2601"},
//		Password: "public",
//		Prompt:   "fixw> ",
//	})
//	stats, err := m.RunCycle(time.Now())
package mantra

import (
	"net/http"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/engine"
	"repro/internal/core/logger"
	"repro/internal/core/output"
	"repro/internal/core/process"
	"repro/internal/core/tables"
	"repro/internal/core/tsdb"
)

// Target identifies one monitored router; it aliases the collector's
// target so callers need only the public package for common use.
type Target = collect.Target

// Metric names a result time series; see the Metric* constants re-exported
// below.
type Metric = process.Metric

// The metrics a Monitor maintains per target, one per figure panel of the
// paper's evaluation.
const (
	MetricSessions       = process.MetricSessions
	MetricParticipants   = process.MetricParticipants
	MetricActiveSessions = process.MetricActiveSessions
	MetricSenders        = process.MetricSenders
	MetricAvgDensity     = process.MetricAvgDensity
	MetricBandwidthKbps  = process.MetricBandwidthKbps
	MetricSavedFactor    = process.MetricSavedFactor
	MetricActiveRatio    = process.MetricActiveRatio
	MetricSenderRatio    = process.MetricSenderRatio
	MetricRoutes         = process.MetricRoutes
	MetricRouteChurn     = process.MetricRouteChurn
	MetricSACache        = process.MetricSACache
	MetricMBGPRoutes     = process.MetricMBGPRoutes
)

// CycleStats is one cycle's computed statistics for one target.
type CycleStats = process.CycleStats

// Anomaly is a detected routing irregularity — an episode with
// first-seen/last-seen times, severity, and resolved state.
type Anomaly = process.Anomaly

// Detector is the pluggable incident-signature interface the processor
// runs after each ingest; see Monitor.Processor().SetDetectors.
type Detector = process.Detector

// AnomalyRollup is the aggregate anomaly view served under /health.
type AnomalyRollup = process.AnomalyRollup

// CrossTargetIncident is one anomaly kind open at two or more targets
// at once; served at /anomalies?cross=1.
type CrossTargetIncident = process.CrossTargetIncident

// Query describes one read against the compressed series store — a raw
// or downsampled range, an aggregate (min/max/avg/sum/count/rate), or a
// top-k ranking across targets. Served over HTTP at /query.
type Query = tsdb.Query

// QueryResult is an assembled query answer: one row per target, sorted
// by name, byte-identical whether the monitor runs unsharded or the
// shard supervisor fanned the query across workers.
type QueryResult = tsdb.Result

// Monitor is a running Mantra instance.
type Monitor struct {
	// Commands is the dump set collected each cycle; defaults to the
	// standard six show commands.
	Commands []string

	targets []Target
	log     *logger.Logger
	proc    *process.Processor
	server  *output.Server
	// collector is the resilient collection path: retries, per-target
	// circuit breakers, dump validation, health ledger.
	collector *collect.Collector
	// engine schedules each cycle as the staged pipeline and owns the
	// consolidated per-target state (latest snapshot, stability
	// tracker, per-stage instrumentation).
	engine *engine.Engine
	// lastResults holds the per-target outcomes of the latest cycle.
	lastResults []CollectResult
	// concurrency bounds the collection worker pool; see SetConcurrency.
	concurrency int
	// aggregate enables the combined multi-router view; see
	// EnableAggregation.
	aggregate bool
	// archive is the durable write-ahead archive, nil until EnableArchive.
	archive *archiveState
}

// New returns an idle monitor with the paper's default configuration
// (4 kbps sender threshold, standard command set).
func New() *Monitor {
	p := process.New()
	m := &Monitor{
		Commands:  append([]string(nil), collect.StandardCommands...),
		log:       logger.New(),
		proc:      p,
		server:    output.NewServer(p),
		collector: collect.NewCollector(collect.DefaultPolicy()),
	}
	m.engine = engine.New(m.engineStages(), nil)
	m.server.SetHealth(func() any { return m.HealthView() })
	m.server.SetStats(func() any { return m.EngineStats() })
	return m
}

// AddTarget registers a router to be polled each cycle. Registering a
// name that is already present replaces its dial settings in place.
// Either way the target's breaker and health ledger start fresh: a
// (re-)registration signals the operator swapped or fixed the device,
// and an inherited open breaker would silently delay the first
// collection of a healthy replacement.
func (m *Monitor) AddTarget(t Target) {
	m.collector.ResetTarget(t.Name)
	for i := range m.targets {
		if m.targets[i].Name == t.Name {
			m.targets[i] = t
			return
		}
	}
	m.targets = append(m.targets, t)
}

// RemoveTarget unregisters a target and drops its breaker and health
// ledger. Its series, delta log and anomaly history remain — history
// outlives membership. It reports whether the target was registered.
func (m *Monitor) RemoveTarget(name string) bool {
	for i := range m.targets {
		if m.targets[i].Name == name {
			m.targets = append(m.targets[:i], m.targets[i+1:]...)
			m.collector.ResetTarget(name)
			return true
		}
	}
	return false
}

// Targets returns the registered target names in registration order.
func (m *Monitor) Targets() []string {
	out := make([]string, len(m.targets))
	for i, t := range m.targets {
		out[i] = t.Name
	}
	return out
}

// RunCycle performs one full monitoring cycle stamped at now: resilient
// collection (retries, per-target circuit breakers, dump validation),
// table processing, delta logging, statistics, and summary-table refresh.
// It returns per-target statistics for the targets that produced a
// snapshot. A failing target no longer aborts the cycle: it is skipped,
// recorded in Health and LastResults, and its series get an explicit gap
// marker. The cycle errs (with ErrAllTargetsFailed) only when every
// target failed. RunCycle drives the stage engine with a single worker,
// i.e. the serial schedule; see RunCycleConcurrent for the pipelined one.
func (m *Monitor) RunCycle(now time.Time) ([]CycleStats, error) {
	return m.runEngine(now, engine.Options{Concurrency: 1})
}

// RouteStability returns the per-prefix stability tracker of a target,
// or nil before the first cycle — route lifetimes, availability and flap
// counts (the route-monitoring outputs of §II-B).
func (m *Monitor) RouteStability(target string) *process.RouteStability {
	return m.engine.Stability(target)
}

// refreshTables rebuilds the published summary tables for a target.
func (m *Monitor) refreshTables(name string, sn *tables.Snapshot) {
	busiest := output.NewTable("busiest-"+name, "group", "density", "kbps", "protocol")
	for _, s := range process.BusiestSessions(sn, 20) {
		_ = busiest.AddRow(
			output.Str(s.Group.String()),
			output.Num(float64(s.Density)),
			output.Num(s.TotalRateKbps),
			output.Str(s.Protocol),
		)
	}
	m.server.RegisterTable(busiest)

	senders := output.NewTable("senders-"+name, "host", "groups", "max_kbps")
	for _, p := range process.TopSenders(sn, 20) {
		_ = senders.AddRow(
			output.Str(p.Host.String()),
			output.Num(float64(p.Groups)),
			output.Num(p.MaxRateKbps),
		)
	}
	m.server.RegisterTable(senders)

	routes := output.NewTable("routes-"+name, "metric", "count")
	rs := process.SummarizeRoutes(sn)
	for metric := 0; metric <= 64; metric++ {
		if c := rs.MetricCounts[metric]; c > 0 {
			_ = routes.AddRow(output.Num(float64(metric)), output.Num(float64(c)))
		}
	}
	m.server.RegisterTable(routes)
}

// Series returns the named result series for a target, or nil before the
// first cycle. With a retention cap (SetSeriesRetain) this is the hot
// ring over the most recent points; MaterializedSeries streams the full
// history back out of the compressed store.
func (m *Monitor) Series(target string, metric Metric) *process.Series {
	return m.proc.Series(target, metric)
}

// MaterializedSeries reconstructs a target's full series from the
// compressed store, independent of the hot-ring retention cap.
// Compression is lossless, so the result is point-for-point identical
// to what an unbounded in-memory series would hold.
func (m *Monitor) MaterializedSeries(target string, metric Metric) *process.Series {
	return m.proc.MaterializedSeries(target, metric)
}

// Query answers a series-store query — range, aggregate, or top-k —
// over this monitor's targets; the programmatic form of /query.
func (m *Monitor) Query(q Query) (QueryResult, error) {
	return m.proc.Query(q)
}

// SetSeriesRetain caps the in-memory hot ring of every series at n
// points (0 restores unbounded growth). Full history stays queryable
// through the compressed store; the cap is clamped so anomaly
// detection is unaffected. Long-running daemons set this via the
// -series-retain flag.
func (m *Monitor) SetSeriesRetain(n int) { m.proc.SetSeriesRetain(n) }

// Latest returns the most recent normalized snapshot for a target, or nil.
func (m *Monitor) Latest(target string) *tables.Snapshot {
	return m.engine.Latest(target)
}

// Anomalies returns the retained anomalies in detection order; the ring
// is capped (SetMaxAnomalies) and AnomalyRollup counts evictions.
func (m *Monitor) Anomalies() []Anomaly {
	return m.proc.Anomalies()
}

// OpenAnomalies returns the currently unresolved anomalies in detection
// order.
func (m *Monitor) OpenAnomalies() []Anomaly {
	return m.proc.OpenAnomalies()
}

// AnomalyRollup returns the aggregate anomaly counts — the rollup
// served under /health alongside per-target collection health.
func (m *Monitor) AnomalyRollup() AnomalyRollup {
	return m.proc.Rollup()
}

// CrossTargetIncidents correlates open anomalies across targets: kinds
// currently open at two or more routers at once.
func (m *Monitor) CrossTargetIncidents() []CrossTargetIncident {
	return m.proc.CrossTarget()
}

// SetMaxAnomalies caps the in-memory anomaly ring (0 restores the
// default, process.DefaultMaxAnomalies). Evicted records are counted in
// the rollup.
func (m *Monitor) SetMaxAnomalies(n int) { m.proc.MaxAnomalies = n }

// Processor exposes the underlying data processor for advanced analysis
// (distribution computations, custom thresholds).
func (m *Monitor) Processor() *process.Processor { return m.proc }

// Log exposes the delta logger for off-line reconstruction and archival.
func (m *Monitor) Log() *logger.Logger { return m.log }

// Handler returns the HTTP handler serving results: series JSON, ASCII
// graphs, interactive tables, and the anomaly feed.
func (m *Monitor) Handler() http.Handler { return m.server }

// RegisterTable publishes an additional summary table.
func (m *Monitor) RegisterTable(t *output.Table) { m.server.RegisterTable(t) }

// BusiestSessions returns a snapshot's top-n sessions by bandwidth — the
// paper's "busiest multicast sessions" summary.
func BusiestSessions(sn *tables.Snapshot, n int) tables.SessionTable {
	return process.BusiestSessions(sn, n)
}

// TopSenders returns a snapshot's top-n participants by peak rate.
func TopSenders(sn *tables.Snapshot, n int) tables.ParticipantTable {
	return process.TopSenders(sn, n)
}

// DensityDistribution computes the fraction of sessions with at most k
// members and the participant share of the top fraction of sessions —
// the §IV-B distribution analysis.
func DensityDistribution(sn *tables.Snapshot, k int, topFrac float64) (atMostK, topShare float64) {
	return process.DensityDistribution(sn, k, topFrac)
}
