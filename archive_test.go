package mantra_test

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/core/process"
	"repro/internal/netsim"
	"repro/internal/router"
)

// rewire registers the network's routers as targets on a fresh monitor —
// the restart path: a new process, the same routers.
func rewire(m *mantra.Monitor, n *netsim.Network, names ...string) {
	for _, name := range names {
		m.AddTarget(mantra.Target{
			Name:     name,
			Dialer:   collect.PipeDialer{Router: n.Router(name)},
			Password: "pw",
			Prompt:   name + "> ",
		})
	}
}

// compareMonitorState asserts the recovered monitor matches the reference
// on everything the archive promises to restore: series (points and
// gaps), delta-log reconstructions, gap markers, anomalies, stability
// trackers, and the health ledger.
func compareMonitorState(t *testing.T, want, got *mantra.Monitor, targets []string) {
	t.Helper()
	for _, tgt := range targets {
		for _, metric := range process.AllMetrics {
			w, g := want.Series(tgt, metric), got.Series(tgt, metric)
			if (w == nil) != (g == nil) {
				t.Fatalf("%s/%s: series presence diverges", tgt, metric)
			}
			if w == nil {
				continue
			}
			if !reflect.DeepEqual(w.Times, g.Times) || !reflect.DeepEqual(w.Values, g.Values) {
				t.Errorf("%s/%s: series points diverge: %d/%d points", tgt, metric, w.Len(), g.Len())
			}
			if !reflect.DeepEqual(w.Gaps, g.Gaps) {
				t.Errorf("%s/%s: series gaps diverge: %v vs %v", tgt, metric, w.Gaps, g.Gaps)
			}
		}
		if w, g := want.Log().Cycles(tgt), got.Log().Cycles(tgt); w != g {
			t.Fatalf("%s: logged cycles %d, recovered %d", tgt, w, g)
		}
		for i := 0; i < want.Log().Cycles(tgt); i++ {
			wp, _ := want.Log().ReconstructPairs(tgt, i)
			gp, err := got.Log().ReconstructPairs(tgt, i)
			if err != nil || !reflect.DeepEqual(wp, gp) {
				t.Errorf("%s cycle %d: reconstructed pairs diverge (%v)", tgt, i, err)
			}
			wr, _ := want.Log().ReconstructRoutes(tgt, i)
			gr, err := got.Log().ReconstructRoutes(tgt, i)
			if err != nil || !reflect.DeepEqual(wr, gr) {
				t.Errorf("%s cycle %d: reconstructed routes diverge (%v)", tgt, i, err)
			}
		}
		if !reflect.DeepEqual(want.Log().Gaps(tgt), got.Log().Gaps(tgt)) {
			t.Errorf("%s: log gap markers diverge", tgt)
		}
		ws, gs := want.RouteStability(tgt), got.RouteStability(tgt)
		if (ws == nil) != (gs == nil) {
			t.Fatalf("%s: stability tracker presence diverges", tgt)
		}
		if ws != nil {
			if ws.Cycles() != gs.Cycles() || !reflect.DeepEqual(ws.Stats(), gs.Stats()) {
				t.Errorf("%s: stability stats diverge", tgt)
			}
		}
	}
	if !reflect.DeepEqual(want.Anomalies(), got.Anomalies()) {
		t.Errorf("anomalies diverge: %v vs %v", want.Anomalies(), got.Anomalies())
	}
	wh, gh := want.Health(), got.Health()
	if len(wh) != len(gh) {
		t.Fatalf("health entries: %d vs %d", len(wh), len(gh))
	}
	for i := range wh {
		w, g := wh[i], gh[i]
		if w.Target != g.Target || w.Breaker != g.Breaker ||
			w.ConsecutiveFailures != g.ConsecutiveFailures ||
			w.TotalCycles != g.TotalCycles || w.TotalFailures != g.TotalFailures ||
			!w.LastSuccess.Equal(g.LastSuccess) {
			t.Errorf("health[%s] diverges:\nwant %+v\ngot  %+v", w.Target, w, g)
		}
	}
}

// TestArchiveCrashRecovery is the end-to-end crash test: run cycles with
// the archive enabled, abandon the monitor without closing (the crash),
// and verify a fresh monitor recovers the full pre-crash state and keeps
// collecting.
func TestArchiveCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	n, m1 := newMonitoredNetwork(t)
	if _, err := m1.EnableArchive(mantra.ArchiveConfig{Dir: dir, CheckpointEvery: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		n.Step()
		if _, err := m1.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: m1 is abandoned, no CloseArchive, no final checkpoint.

	m2 := mantra.New()
	rewire(m2, n, "fixw", "ucsb-r1")
	report, err := m2.EnableArchive(mantra.ArchiveConfig{Dir: dir, CheckpointEvery: 3, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Resumed {
		t.Fatal("recovery did not resume")
	}
	if report.Stats.TornTail {
		t.Fatalf("clean crash reported torn tail: %+v", report.Stats)
	}
	// CheckpointEvery=3 over 7 cycles → checkpoint at cycle 6, one cycle
	// of WAL tail to replay for each target.
	if !report.Stats.CheckpointLoaded || report.CyclesReplayed != 2 {
		t.Fatalf("report = %+v", report)
	}
	compareMonitorState(t, m1, m2, []string{"fixw", "ucsb-r1"})
	if m2.Latest("fixw") == nil || m2.Latest("ucsb-r1") == nil {
		t.Fatal("latest snapshots not restored")
	}

	// The recovered monitor must keep working: more cycles extend the
	// series and the archive.
	for i := 0; i < 2; i++ {
		n.Step()
		if _, err := m2.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if got := m2.Series("fixw", mantra.MetricSessions).Len(); got != 9 {
		t.Fatalf("series after resume = %d points, want 9", got)
	}
	if err := m2.CloseArchive(n.Now()); err != nil {
		t.Fatal(err)
	}

	// A third restart sees the continued history.
	m3 := mantra.New()
	rewire(m3, n, "fixw", "ucsb-r1")
	if _, err := m3.EnableArchive(mantra.ArchiveConfig{Dir: dir, Resume: true}); err != nil {
		t.Fatal(err)
	}
	compareMonitorState(t, m2, m3, []string{"fixw", "ucsb-r1"})
}

// TestArchiveCrashRecoveryWithFaults runs the crash test against a
// fault-injected target so the archive carries gap markers, failure
// health and open breakers across the crash.
func TestArchiveCrashRecoveryWithFaults(t *testing.T) {
	dir := t.TempDir()
	n, m1, _ := chaosMonitor(t, router.FaultProfile{RefuseConn: 1}, collect.Policy{
		MaxAttempts:      1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		Sleep:            func(time.Duration) {},
	})
	if _, err := m1.EnableArchive(mantra.ArchiveConfig{Dir: dir, CheckpointEvery: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		n.Step()
		_, _ = m1.RunCycle(n.Now()) // fixw degrades every cycle; that is the point
	}
	h1, _ := firstHealth(m1, "fixw")
	if h1.Breaker != collect.BreakerOpen {
		t.Fatalf("precondition: fixw breaker = %v, want open", h1.Breaker)
	}

	m2 := mantra.New()
	m2.SetCollectPolicy(collect.Policy{
		MaxAttempts:      1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		Sleep:            func(time.Duration) {},
	})
	rewire(m2, n, "fixw", "ucsb-r1")
	report, err := m2.EnableArchive(mantra.ArchiveConfig{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.GapsReplayed == 0 {
		t.Fatalf("no gaps replayed: %+v", report)
	}
	compareMonitorState(t, m1, m2, []string{"fixw", "ucsb-r1"})

	h2, _ := firstHealth(m2, "fixw")
	if h2.Breaker != collect.BreakerOpen {
		t.Fatalf("breaker state lost across crash: %v", h2.Breaker)
	}
}

func firstHealth(m *mantra.Monitor, target string) (mantra.TargetHealth, bool) {
	for _, h := range m.Health() {
		if h.Target == target {
			return h, true
		}
	}
	return mantra.TargetHealth{}, false
}

// TestArchiveTornTailRecovery damages the archive the way a mid-write
// crash does — a partial record at the tail — and verifies recovery
// repairs it, reports it, and loses nothing but that partial record.
func TestArchiveTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	n, m1 := newMonitoredNetwork(t)
	if _, err := m1.EnableArchive(mantra.ArchiveConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		n.Step()
		if _, err := m1.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-append: garbage after the last whole record.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%v)", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x00, 0x00, 0x00, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := mantra.New()
	rewire(m2, n, "fixw", "ucsb-r1")
	report, err := m2.EnableArchive(mantra.ArchiveConfig{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Stats.TornTail || report.Stats.TruncatedBytes != 6 {
		t.Fatalf("torn tail not reported: %+v", report.Stats)
	}
	compareMonitorState(t, m1, m2, []string{"fixw", "ucsb-r1"})

	// The repair must also be visible through the HTTP archive endpoint.
	srv := httptest.NewServer(m2.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/archive")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Recovery struct {
			Stats struct {
				TornTail bool `json:"torn_tail"`
			} `json:"stats"`
		} `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if !status.Recovery.Stats.TornTail {
		t.Error("/archive does not report the repaired tail")
	}
}

// TestArchiveTruncatedTailLosesAtMostOneCycle chops bytes off the tail
// segment — torn mid-record — and verifies the recovered state is a clean
// prefix and the monitor keeps running.
func TestArchiveTruncatedTailLosesAtMostOneCycle(t *testing.T) {
	dir := t.TempDir()
	n, m1 := newMonitoredNetwork(t)
	if _, err := m1.EnableArchive(mantra.ArchiveConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		n.Step()
		if _, err := m1.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	seg := segs[len(segs)-1]
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-37); err != nil {
		t.Fatal(err)
	}

	m2 := mantra.New()
	rewire(m2, n, "fixw", "ucsb-r1")
	report, err := m2.EnableArchive(mantra.ArchiveConfig{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Stats.TornTail {
		t.Fatalf("truncation not reported: %+v", report.Stats)
	}
	// The cut lands inside the last record: only the final target's final
	// cycle may be lost.
	lost := 0
	for _, tgt := range []string{"fixw", "ucsb-r1"} {
		w, g := m1.Log().Cycles(tgt), m2.Log().Cycles(tgt)
		if g > w || w-g > 1 {
			t.Fatalf("%s: recovered %d of %d cycles", tgt, g, w)
		}
		lost += w - g
	}
	if lost != 1 {
		t.Fatalf("lost %d cycles, want exactly the torn record", lost)
	}
	// Recovered cycles must reconstruct identically.
	for _, tgt := range []string{"fixw", "ucsb-r1"} {
		for i := 0; i < m2.Log().Cycles(tgt); i++ {
			wp, _ := m1.Log().ReconstructPairs(tgt, i)
			gp, err := m2.Log().ReconstructPairs(tgt, i)
			if err != nil || !reflect.DeepEqual(wp, gp) {
				t.Fatalf("%s cycle %d: surviving data corrupted (%v)", tgt, i, err)
			}
		}
	}
	// And the monitor keeps collecting on the repaired archive.
	n.Step()
	if _, err := m2.RunCycle(n.Now()); err != nil {
		t.Fatal(err)
	}
	if err := m2.CloseArchive(n.Now()); err != nil {
		t.Fatal(err)
	}
}

// TestArchiveRefusesSilentOverwrite pins the operator-safety contract:
// existing data plus Resume=false is an error, not a wipe.
func TestArchiveRefusesSilentOverwrite(t *testing.T) {
	dir := t.TempDir()
	n, m1 := newMonitoredNetwork(t)
	if _, err := m1.EnableArchive(mantra.ArchiveConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	n.Step()
	if _, err := m1.RunCycle(n.Now()); err != nil {
		t.Fatal(err)
	}
	if err := m1.CloseArchive(n.Now()); err != nil {
		t.Fatal(err)
	}

	m2 := mantra.New()
	rewire(m2, n, "fixw", "ucsb-r1")
	if _, err := m2.EnableArchive(mantra.ArchiveConfig{Dir: dir}); !errors.Is(err, mantra.ErrArchiveExists) {
		t.Fatalf("err = %v, want ErrArchiveExists", err)
	}
	// The refusal must not have damaged the archive.
	m3 := mantra.New()
	rewire(m3, n, "fixw", "ucsb-r1")
	if _, err := m3.EnableArchive(mantra.ArchiveConfig{Dir: dir, Resume: true}); err != nil {
		t.Fatal(err)
	}
	if m3.Log().Cycles("fixw") != 1 {
		t.Fatalf("cycles = %d after refused overwrite", m3.Log().Cycles("fixw"))
	}
}

// TestArchiveAggregateAcrossCrash verifies the synthetic aggregate view
// survives recovery like any real target.
func TestArchiveAggregateAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	n, m1 := newMonitoredNetwork(t)
	m1.EnableAggregation()
	if _, err := m1.EnableArchive(mantra.ArchiveConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		n.Step()
		if _, err := m1.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}

	m2 := mantra.New()
	m2.EnableAggregation()
	rewire(m2, n, "fixw", "ucsb-r1")
	if _, err := m2.EnableArchive(mantra.ArchiveConfig{Dir: dir, Resume: true}); err != nil {
		t.Fatal(err)
	}
	compareMonitorState(t, m1, m2, []string{"fixw", "ucsb-r1", mantra.AggregateTarget})
	// The aggregate is synthetic: it must not appear in the health ledger.
	if _, ok := firstHealth(m2, mantra.AggregateTarget); ok {
		t.Error("aggregate target leaked into health ledger")
	}
}

// TestArchiveAnomalyRecovery proves detector state survives a crash: a
// resolved episode, an episode still open at the crash (with its frozen
// detection baseline), and the rollup counters are all rebuilt by
// recovery — even with a torn tail — and the recovered monitor then
// finishes the open episode exactly as an uncrashed one would.
func TestArchiveAnomalyRecovery(t *testing.T) {
	dir := t.TempDir()
	n, m1 := incidentMonitor(t, nil, "")
	if _, err := m1.EnableArchive(mantra.ArchiveConfig{Dir: dir, CheckpointEvery: 3}); err != nil {
		t.Fatal(err)
	}
	targets := []string{"fixw", "ucsb-r1", "dom00-gw"}
	cycle := func(m *mantra.Monitor) {
		t.Helper()
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	countKind := func(m *mantra.Monitor, target, kind string) (total, open int) {
		for _, a := range m.Anomalies() {
			if a.Target == target && a.Kind == kind {
				total++
				if !a.Resolved {
					open++
				}
			}
		}
		return total, open
	}
	for i := 0; i < 8; i++ {
		cycle(m1)
	}
	// Incident 1 opens and fully resolves before the crash.
	sc1, err := netsim.LibraryScenario("route-leak", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ScheduleScenario(sc1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		cycle(m1)
	}
	if total, open := countKind(m1, "fixw", "route-leak"); total != 1 || open != 0 {
		t.Fatalf("precondition: route-leak at fixw = %d total / %d open, want 1/0", total, open)
	}
	// Incident 2 is mid-flight at the crash.
	sc2, err := netsim.LibraryScenario("unicast-injection", 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ScheduleScenario(sc2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cycle(m1)
	}
	if total, open := countKind(m1, "ucsb-r1", "route-injection"); total != 1 || open != 1 {
		t.Fatalf("precondition: route-injection at ucsb-r1 = %d total / %d open, want 1/1", total, open)
	}

	// Crash mid-incident, plus a torn tail: garbage after the last whole
	// WAL record, the signature of dying mid-append.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%v)", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x77, 0x00, 0xBE, 0xEF}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := mantra.New()
	rewire(m2, n, targets...)
	report, err := m2.EnableArchive(mantra.ArchiveConfig{Dir: dir, CheckpointEvery: 3, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Resumed || !report.Stats.TornTail || report.Stats.TruncatedBytes != 4 {
		t.Fatalf("recovery report = %+v / %+v", report, report.Stats)
	}
	compareMonitorState(t, m1, m2, targets)
	if !reflect.DeepEqual(m1.AnomalyRollup(), m2.AnomalyRollup()) {
		t.Errorf("rollup diverges: %+v vs %+v", m1.AnomalyRollup(), m2.AnomalyRollup())
	}

	// The frozen baseline came back with the open episode: three more
	// incident cycles must neither falsely resolve it nor open a second
	// episode against an incident-poisoned baseline.
	for i := 0; i < 3; i++ {
		cycle(m2)
	}
	if total, open := countKind(m2, "ucsb-r1", "route-injection"); total != 1 || open != 1 {
		t.Fatalf("mid-incident after recovery: %d total / %d open, want 1/1", total, open)
	}
	// The incident ends; the recovered monitor resolves the pre-crash
	// episode like an uncrashed one would.
	for i := 0; i < 4; i++ {
		cycle(m2)
	}
	total, open := countKind(m2, "ucsb-r1", "route-injection")
	if total != 1 || open != 0 {
		t.Fatalf("after incident end: %d total / %d open, want 1/0", total, open)
	}
	for _, a := range m2.Anomalies() {
		if a.Target == "ucsb-r1" && a.Kind == "route-injection" && a.ResolvedAt.IsZero() {
			t.Error("resolved episode lacks ResolvedAt")
		}
	}
	if err := m2.CloseArchive(n.Now()); err != nil {
		t.Fatal(err)
	}
}
