package mantra

import (
	"fmt"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/engine"
	"repro/internal/core/process"
	"repro/internal/core/tables"
)

// DefaultConcurrencyCap bounds the default collection fan-out of
// RunCycleConcurrent: min(DefaultConcurrencyCap, number of targets)
// workers, overridable with SetConcurrency.
const DefaultConcurrencyCap = 8

// engineStages wires the monitor's modules into the engine's stage
// slots, preserving the exact per-target call sequence of the old
// serial path: collect → build snapshot → delta-log/archive → ingest →
// publish, with gaps handled stage-locally.
func (m *Monitor) engineStages() engine.Stages {
	return engine.Stages{
		Collect:   m.stageCollect,
		Normalize: m.stageNormalize,
		Log:       m.stageLog,
		Ingest:    m.stageIngest,
		Publish:   m.stagePublish,
		Aggregate: m.stageAggregate,
	}
}

// stageCollect runs the resilient collection of one target (breaker
// check, retries, dump validation). Safe for concurrent use across
// targets — the collector serializes its own bookkeeping.
//
//mantra:hotpath
func (m *Monitor) stageCollect(it *engine.Item, now time.Time) {
	it.Res = m.collector.Collect(it.Target, m.Commands, now)
}

// stageNormalize maps the raw dumps onto the local tables. A parse
// failure counts against the target's breaker: a router emitting
// unparseable dumps is as unhealthy as one refusing logins.
//
//mantra:hotpath budget=1
func (m *Monitor) stageNormalize(it *engine.Item, now time.Time) {
	sn, err := tables.BuildSnapshot(it.Res.Dumps)
	if err != nil {
		err = fmt.Errorf("collect %s: snapshot rejected: %w", it.Target.Name, err)
		m.collector.RecordFailure(it.Target.Name, now, err)
		it.Res.Status = collect.StatusDegraded
		it.Res.Err = err
		return
	}
	it.Snapshot = sn
}

// stageLog appends the cycle to the delta log and the durable archive;
// a failed target gets an explicit gap marker instead.
//
//mantra:hotpath
func (m *Monitor) stageLog(it *engine.Item, now time.Time) {
	if it.Snapshot == nil {
		reason := ""
		if it.Res.Err != nil {
			reason = it.Res.Err.Error()
		}
		m.log.MarkGap(it.Res.Target, now, reason)
		m.archiveAppendGap(it.Res.Target, now, reason)
		return
	}
	rec := m.log.Append(it.Snapshot)
	m.archiveAppendDelta(it.Snapshot.Target, rec, uint64(len(it.Snapshot.Pairs)+len(it.Snapshot.Routes)))
}

// stageIngest feeds the snapshot into the data processor; failed
// targets get a gap marker on their series instead.
func (m *Monitor) stageIngest(it *engine.Item, now time.Time) {
	if it.Snapshot == nil {
		m.proc.MarkGap(it.Res.Target, now)
		return
	}
	st := m.proc.Ingest(it.Snapshot)
	it.Stats = &st
}

// stagePublish refreshes the HTTP summary tables from the snapshot.
func (m *Monitor) stagePublish(it *engine.Item, _ time.Time) {
	if it.Snapshot == nil {
		return
	}
	m.refreshTables(it.Snapshot.Target, it.Snapshot)
}

// stageAggregate merges the cycle's successful snapshots into the
// combined view and runs it through the same log/ingest/publish path.
func (m *Monitor) stageAggregate(now time.Time, snaps []*tables.Snapshot) *process.CycleStats {
	agg := MergeSnapshots(AggregateTarget, now, snaps...)
	rec := m.log.Append(agg)
	m.archiveAppendDelta(AggregateTarget, rec, uint64(len(agg.Pairs)+len(agg.Routes)))
	st := m.proc.Ingest(agg)
	m.engine.SetLatest(AggregateTarget, agg)
	m.refreshTables(AggregateTarget, agg)
	return &st
}

// runEngine drives one cycle through the engine and adapts its items to
// the monitor's result types. The cycle errs (ErrAllTargetsFailed) only
// when every target failed.
func (m *Monitor) runEngine(now time.Time, opts engine.Options) ([]CycleStats, error) {
	opts.Aggregate = m.aggregate
	items, aggStats, _ := m.engine.Run(now, m.targets, opts)
	var out []CycleStats
	results := make([]CollectResult, 0, len(items))
	failed := 0
	for _, it := range items {
		cr := CollectResult{
			Target:   it.Res.Target,
			Status:   it.Res.Status,
			Attempts: it.Res.Attempts,
			Err:      it.Res.Err,
		}
		if it.Stats != nil {
			cr.Stats = it.Stats
			out = append(out, *it.Stats)
		} else {
			failed++
		}
		results = append(results, cr)
	}
	if aggStats != nil {
		out = append(out, *aggStats)
	}
	m.archiveAfterCycle(now)
	m.lastResults = results
	if len(items) > 0 && failed == len(items) {
		return out, fmt.Errorf("mantra: %w", ErrAllTargetsFailed)
	}
	return out, nil
}

// SetConcurrency bounds the collection worker pool RunCycleConcurrent
// and RunCycleBarrier fan out on. Values below 1 restore the default
// min(DefaultConcurrencyCap, number of targets).
func (m *Monitor) SetConcurrency(n int) { m.concurrency = n }

// Concurrency returns the effective collection fan-out for the current
// target set.
func (m *Monitor) Concurrency() int {
	if m.concurrency > 0 {
		return m.concurrency
	}
	n := len(m.targets)
	if n > DefaultConcurrencyCap {
		n = DefaultConcurrencyCap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetCycleClock injects the engine's monotonic cycle clock, which
// stamps all per-stage instrumentation. The default is real monotonic
// time; simulated deployments inject a virtual clock so the sim path
// performs no wall-clock reads and instrumented timings reproduce
// exactly. The clock must be safe for concurrent use.
func (m *Monitor) SetCycleClock(c engine.Clock) { m.engine.SetClock(c) }

// EngineStats returns the cycle engine's cumulative per-stage,
// per-target instrumentation — the view served over HTTP at /stats.
func (m *Monitor) EngineStats() engine.Stats { return m.engine.Stats() }

// LastCycleReport returns the most recent cycle's per-stage timings and
// queue-depth counters, or nil before the first cycle.
func (m *Monitor) LastCycleReport() *engine.CycleReport { return m.engine.LastReport() }

// RunCycleBarrier runs one cycle under the pre-pipeline two-phase
// schedule: every target finishes collection (on the same bounded pool)
// before any is processed. It exists so the pipelined schedule's gain
// can be measured against it (BenchmarkCycleEngine); results are
// identical to RunCycleConcurrent, only the overlap differs.
func (m *Monitor) RunCycleBarrier(now time.Time) ([]CycleStats, error) {
	return m.runEngine(now, engine.Options{Concurrency: m.Concurrency(), Barrier: true})
}
