// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per figure drives the exact pipeline that produces that figure's data
// series (simulated network + CLI scrape + table processing + statistics),
// reported in cycles per second of monitored time. Ablation benchmarks
// quantify the design choices §III calls out: delta logging, CLI scraping
// versus direct state reads, and the 4 kbps sender threshold.
package mantra_test

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	mantra "repro"
	"repro/internal/applayer"
	"repro/internal/core/collect"
	"repro/internal/core/logger"
	"repro/internal/core/process"
	"repro/internal/core/tables"
	"repro/internal/dvmrp"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/snmp"
	"repro/internal/topo"
	"repro/internal/workload"
)

// usageBench lazily builds one Quick usage runner shared by the usage
// figure benchmarks; each benchmark advances it by b.N monitored cycles,
// so state continues naturally between them.
var (
	usageOnce   sync.Once
	usageRunner *experiments.Runner
)

func getUsageRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	usageOnce.Do(func() {
		r, err := experiments.NewRunner(experiments.UsageConfig(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		// Warm up so every series has data before measurement.
		if err := r.RunCycles(4); err != nil {
			b.Fatal(err)
		}
		usageRunner = r
	})
	return usageRunner
}

func benchCycles(b *testing.B, r *experiments.Runner) {
	b.Helper()
	b.ResetTimer()
	if err := r.RunCycles(b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

// BenchmarkFig3SessionParticipant regenerates the Figure 3 series:
// sessions, participants, active sessions and senders per cycle at FIXW.
func BenchmarkFig3SessionParticipant(b *testing.B) {
	r := getUsageRunner(b)
	benchCycles(b, r)
	s := r.Mon.Series("fixw", process.MetricSessions)
	b.ReportMetric(s.Last(), "sessions")
	b.ReportMetric(r.Mon.Series("fixw", process.MetricParticipants).Last(), "participants")
}

// BenchmarkFig4Density regenerates the Figure 4 series: average session
// density alongside the counts it correlates with.
func BenchmarkFig4Density(b *testing.B) {
	r := getUsageRunner(b)
	benchCycles(b, r)
	b.ReportMetric(r.Mon.Series("fixw", process.MetricAvgDensity).Last(), "avg_density")
}

// BenchmarkFig5Bandwidth regenerates the Figure 5 series: multicast
// bandwidth through FIXW and the estimated unicast-equivalent multiple.
func BenchmarkFig5Bandwidth(b *testing.B) {
	r := getUsageRunner(b)
	benchCycles(b, r)
	mean, _, _, _, _ := r.Mon.Series("fixw", process.MetricBandwidthKbps).Stats()
	b.ReportMetric(mean, "mean_kbps")
	b.ReportMetric(r.Mon.Series("fixw", process.MetricSavedFactor).Last(), "saved_x")
}

// BenchmarkFig6ActiveRatios regenerates the Figure 6 series: the active-
// session and sender-participant ratios.
func BenchmarkFig6ActiveRatios(b *testing.B) {
	r := getUsageRunner(b)
	benchCycles(b, r)
	b.ReportMetric(r.Mon.Series("fixw", process.MetricActiveRatio).Last(), "active_ratio")
	b.ReportMetric(r.Mon.Series("fixw", process.MetricSenderRatio).Last(), "sender_ratio")
}

// BenchmarkFig7DVMRPRoutes regenerates the Figure 7 series: DVMRP route
// counts at the two vantages, including the flap/loss dynamics.
func BenchmarkFig7DVMRPRoutes(b *testing.B) {
	r := getUsageRunner(b)
	benchCycles(b, r)
	b.ReportMetric(r.Mon.Series("fixw", process.MetricRoutes).Last(), "fixw_routes")
	b.ReportMetric(r.Mon.Series("ucsb-r1", process.MetricRoutes).Last(), "ucsb_routes")
}

// BenchmarkFig8DVMRPDecline regenerates the Figure 8 scenario: the
// long-term decline of DVMRP as domains migrate off it.
func BenchmarkFig8DVMRPDecline(b *testing.B) {
	r, err := experiments.NewRunner(experiments.LongTermConfig(experiments.Quick))
	if err != nil {
		b.Fatal(err)
	}
	benchCycles(b, r)
	b.ReportMetric(r.Mon.Series("fixw", process.MetricRoutes).Last(), "fixw_routes")
}

// BenchmarkFig9RouteInjection regenerates the Figure 9 scenario: the
// injection watch at five-to-fifteen-minute cycles. Setup advances the
// scenario to just before the injection instant so the measured cycles
// cross it and the detector metric is meaningful.
func BenchmarkFig9RouteInjection(b *testing.B) {
	cfg := experiments.InjectionConfig(experiments.Quick)
	r, err := experiments.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	warm := int(cfg.InjectAt.Sub(cfg.Start)/cfg.Cycle) - 4
	for i := 0; i < warm; i++ {
		r.Net.Step()
	}
	if _, err := r.Mon.RunCycle(r.Net.Now()); err != nil {
		b.Fatal(err)
	}
	benchCycles(b, r)
	b.ReportMetric(float64(len(r.Mon.Anomalies())), "anomalies")
}

// BenchmarkClaimDensityDistribution computes the §IV-B distribution
// claims (≤2-member share, top-6% participant share) on live snapshots.
func BenchmarkClaimDensityDistribution(b *testing.B) {
	r := getUsageRunner(b)
	sn := r.Mon.Latest("fixw")
	if sn == nil {
		b.Fatal("no snapshot")
	}
	var atMost2, topShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atMost2, topShare = mantra.DensityDistribution(sn, 2, 0.06)
	}
	b.StopTimer()
	b.ReportMetric(atMost2*100, "pct_le2")
	b.ReportMetric(topShare*100, "pct_top6")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationDeltaLog measures delta-encoded logging of realistic
// snapshots and reports the achieved storage compression.
func BenchmarkAblationDeltaLog(b *testing.B) {
	r := getUsageRunner(b)
	sn := r.Mon.Latest("fixw")
	if sn == nil {
		b.Fatal("no snapshot")
	}
	l := logger.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := *sn
		cp.At = sn.At.Add(time.Duration(i) * time.Hour)
		l.Append(&cp)
	}
	// The time per append is the measurement; realistic compression
	// ratios are asserted in the logger and monitor tests (an unchanged
	// snapshot re-appended b.N times would report a degenerate ratio).
}

// BenchmarkAblationFullLog is the no-delta baseline: every cycle logged
// as a fresh target (nothing to diff against), i.e. full-snapshot cost.
func BenchmarkAblationFullLog(b *testing.B) {
	r := getUsageRunner(b)
	sn := r.Mon.Latest("fixw")
	if sn == nil {
		b.Fatal("no snapshot")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := logger.New()
		l.Append(sn)
	}
}

// BenchmarkAblationCLIScrape measures the paper's collection path: CLI
// login, dump, pre-process, parse.
func BenchmarkAblationCLIScrape(b *testing.B) {
	r := getUsageRunner(b)
	rt := r.Net.Router("fixw")
	tgt := mantra.Target{
		Name:   "fixw",
		Dialer: collect.PipeDialer{Router: rt},
		Prompt: "fixw> ",
	}
	// The router already has a password from the runner; clear for bench.
	rt.Password = ""
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dumps, err := collect.CollectAll(tgt, collect.StandardCommands, r.Net.Now())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tables.BuildSnapshot(dumps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResilientCollectHappyPath measures the same collection as
// BenchmarkAblationCLIScrape but through the resilient Collector — breaker
// bookkeeping, dump validation and result recording included. The gap
// between the two is the retry path's happy-case overhead, which must stay
// negligible next to the session round trips themselves.
func BenchmarkResilientCollectHappyPath(b *testing.B) {
	r := getUsageRunner(b)
	rt := r.Net.Router("fixw")
	tgt := mantra.Target{
		Name:   "fixw",
		Dialer: collect.PipeDialer{Router: rt},
		Prompt: "fixw> ",
	}
	rt.Password = ""
	c := collect.NewCollector(collect.DefaultPolicy())
	now := r.Net.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.Collect(tgt, collect.StandardCommands, now)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if _, err := tables.BuildSnapshot(res.Dumps); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if h, _ := c.TargetHealth("fixw"); h.TotalFailures != 0 {
		b.Fatalf("happy path recorded failures: %+v", h)
	}
}

// BenchmarkAblationDirectRead is the hypothetical SNMP-like alternative:
// building the same snapshot straight from router state, skipping the
// text round trip. The gap against BenchmarkAblationCLIScrape is the cost
// Mantra pays for working without multicast MIBs.
func BenchmarkAblationDirectRead(b *testing.B) {
	r := getUsageRunner(b)
	rt := r.Net.Router("fixw")
	now := r.Net.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := &tables.Snapshot{Target: "fixw", At: now}
		for _, e := range rt.FWD.Entries() {
			sn.Pairs = append(sn.Pairs, tables.PairEntry{
				Source: e.Key.Source, Group: e.Key.Group,
				Flags: e.Flags.String(), RateKbps: e.RateKbps,
				Packets: e.Packets, Uptime: now.Sub(e.Created),
			})
		}
		for _, route := range r.Net.DVMRP.Table(rt.Spec.ID) {
			sn.Routes = append(sn.Routes, tables.RouteEntry{
				Prefix: route.Prefix, Metric: route.Metric,
				Uptime: now.Sub(route.Since),
			})
		}
	}
}

// BenchmarkAblationSenderThreshold sweeps the classification threshold
// the paper fixes at 4 kbps, reporting how sender counts respond.
func BenchmarkAblationSenderThreshold(b *testing.B) {
	r := getUsageRunner(b)
	sn := r.Mon.Latest("fixw")
	if sn == nil {
		b.Fatal("no snapshot")
	}
	for _, thr := range []float64{1, 4, 16} {
		b.Run(thresholdName(thr), func(b *testing.B) {
			var senders int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := process.New()
				p.SenderThresholdKbps = thr
				st := p.Ingest(sn)
				senders = st.Senders
			}
			b.StopTimer()
			b.ReportMetric(float64(senders), "senders")
		})
	}
}

func thresholdName(thr float64) string {
	switch thr {
	case 1:
		return "1kbps"
	case 16:
		return "16kbps"
	}
	return "4kbps"
}

// --- Cycle engine ---------------------------------------------------------

// slowDialer injects a fixed per-session latency before dialing — the
// skewed-target profile for the engine benchmark.
type slowDialer struct {
	d     collect.Dialer
	delay time.Duration
}

func (d slowDialer) Dial() (io.ReadWriteCloser, error) {
	time.Sleep(d.delay)
	return d.d.Dial()
}

// engineBenchMonitor builds a 64-target monitor over one simulated
// router with a skewed latency profile: every session pays a network
// round-trip (8 ms), and every eighth target drags 30 ms — the
// stragglers every real deployment has. Collection is therefore
// latency-dominated: the worker pool spends much of the cycle waiting
// on the wire with CPU to spare. That spare capacity is what separates
// the schedules — the barrier leaves it idle until the last dump is in,
// the pipelined schedule fills it with the ordered stages of the
// targets already collected.
func engineBenchMonitor(b *testing.B) *mantra.Monitor {
	b.Helper()
	r := getUsageRunner(b)
	rt := r.Net.Router("fixw")
	m := mantra.New()
	m.SetConcurrency(8)
	for i := 0; i < 64; i++ {
		delay := 8 * time.Millisecond
		if i%8 == 7 {
			delay = 30 * time.Millisecond
		}
		m.AddTarget(mantra.Target{
			Name:     fmt.Sprintf("t%02d", i),
			Dialer:   slowDialer{d: collect.PipeDialer{Router: rt}, delay: delay},
			Password: rt.Password,
			Prompt:   "fixw> ",
		})
	}
	return m
}

// BenchmarkCycleEngine measures one monitoring cycle over 64 targets
// with the skewed-latency profile, pipelined versus barrier at the same
// worker-pool size. The artifacts are identical by construction
// (TestPipelinedCycleMatchesSerial); the wall clock is the difference,
// and pipelined must come out ahead.
func BenchmarkCycleEngine(b *testing.B) {
	run := func(b *testing.B, cycle func(m *mantra.Monitor, now time.Time) ([]mantra.CycleStats, error)) {
		m := engineBenchMonitor(b)
		now := sim.Epoch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now = now.Add(30 * time.Minute)
			if _, err := cycle(m, now); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		rep := m.LastCycleReport()
		b.ReportMetric(float64(rep.WallNs)/1e6, "wall_ms/cycle")
		b.ReportMetric(float64(rep.StageTotal("collect").Milliseconds()), "collect_ms/cycle")
		b.ReportMetric(float64(rep.MaxQueueDepth), "queue_peak")
	}
	b.Run("barrier", func(b *testing.B) {
		run(b, func(m *mantra.Monitor, now time.Time) ([]mantra.CycleStats, error) {
			return m.RunCycleBarrier(now)
		})
	})
	b.Run("pipelined", func(b *testing.B) {
		run(b, func(m *mantra.Monitor, now time.Time) ([]mantra.CycleStats, error) {
			return m.RunCycleConcurrent(now)
		})
	})
	b.Run("serial", func(b *testing.B) {
		run(b, func(m *mantra.Monitor, now time.Time) ([]mantra.CycleStats, error) {
			return m.RunCycle(now)
		})
	})
}

// --- Micro-benchmarks on the substrates ----------------------------------

// BenchmarkDVMRPTick measures one protocol tick of the full-size cloud.
func BenchmarkDVMRPTick(b *testing.B) {
	inet := topo.BuildInternet(topo.DefaultInternetConfig())
	cloud := dvmrp.NewCloud(inet.Topo, sim.NewRNG(1), 30*time.Minute)
	for _, r := range inet.Topo.Routers() {
		if r.Mode == topo.ModeDVMRP || r.Mode == topo.ModeBorder {
			cloud.EnsureRouter(r.ID)
		}
	}
	now := sim.Epoch
	for _, d := range inet.Topo.Domains() {
		cloud.Originate(d.Border(), now, 1, d.Prefixes...)
	}
	cloud.Tick(now)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(30 * time.Minute)
		cloud.Tick(now)
	}
	b.StopTimer()
	b.ReportMetric(float64(cloud.RouteCount(inet.FIXW.ID)), "routes")
}

// BenchmarkNetworkStep measures one unmonitored simulation cycle at the
// paper's full scale.
func BenchmarkNetworkStep(b *testing.B) {
	inet := topo.BuildInternet(topo.DefaultInternetConfig())
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-r1"); err != nil {
		b.Fatal(err)
	}
	n.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkParseMroute measures forwarding-table parsing throughput.
func BenchmarkParseMroute(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("IP Multicast Forwarding Table - 1000 entries\n")
	sb.WriteString("Source           Group            Flags  IIF  OIFs           Kbps      Pkts        Uptime\n")
	for i := 0; i < 1000; i++ {
		sb.WriteString("128.111.41.2     224.2.0.1        DP     12   3,4            64.0      123456      12:30:00\n")
	}
	lines := collect.Preprocess(sb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tables.ParseMroute(lines); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(sb.String())))
}

// BenchmarkCLIDump measures the router-side rendering of the two primary
// tables.
func BenchmarkCLIDump(b *testing.B) {
	r := getUsageRunner(b)
	rt := r.Net.Router("fixw")
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		out := rt.Execute("show ip dvmrp route")
		out2 := rt.Execute("show ip mroute")
		n = len(out) + len(out2)
	}
	b.StopTimer()
	b.SetBytes(int64(n))
}

// BenchmarkAblationSNMPWalk measures the SNMP alternative collecting the
// two tables the era's MIBs covered, for comparison with the CLI scrape.
func BenchmarkAblationSNMPWalk(b *testing.B) {
	r := getUsageRunner(b)
	rt := r.Net.Router("fixw")
	agent := snmp.NewAgent("public")
	agent.SetView(snmp.BuildView(rt, r.Net.Now()))
	c := snmp.NewClient("public", snmp.AgentTransport(agent))
	b.ResetTimer()
	var routes int
	for i := 0; i < b.N; i++ {
		tbls, err := collect.CollectSNMP(c)
		if err != nil {
			b.Fatal(err)
		}
		routes = len(tbls.RouteRows)
	}
	b.StopTimer()
	b.ReportMetric(float64(routes), "routes")
}

// BenchmarkBaselineAppLayer measures the application-layer observer the
// paper compares against and reports its coverage next to the network
// layer's at the same instant.
func BenchmarkBaselineAppLayer(b *testing.B) {
	r := getUsageRunner(b)
	vantage := r.Net.Topo.RouterByName("ucsb-r1")
	m := applayer.New(vantage.ID)
	var sn applayer.Snapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn = m.Observe(r.Net)
	}
	b.StopTimer()
	nlSessions, nlParticipants := applayer.NetworkLayerView(r.Net, "fixw")
	b.ReportMetric(float64(sn.Sessions), "app_sessions")
	b.ReportMetric(float64(sn.Participants), "app_participants")
	b.ReportMetric(float64(nlSessions), "net_sessions")
	b.ReportMetric(float64(nlParticipants), "net_participants")
}

// BenchmarkArchiveAppend measures durable append throughput: one realistic
// delta record framed, checksummed and written to the WAL per iteration
// (fsync on rotation/checkpoint only, the default policy).
func BenchmarkArchiveAppend(b *testing.B) {
	r := getUsageRunner(b)
	sn := r.Mon.Latest("fixw")
	if sn == nil {
		b.Fatal("no snapshot")
	}
	l := logger.New()
	store, err := logger.OpenStore(b.TempDir(), logger.StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := *sn
		cp.At = sn.At.Add(time.Duration(i) * time.Hour)
		rec := l.Append(&cp)
		if err := store.AppendDelta("fixw", rec, uint64(len(cp.Pairs)+len(cp.Routes))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := store.Stats()
	b.SetBytes(int64(st.AppendedBytes / uint64(b.N)))
}

// BenchmarkArchiveAppendSync is the fully durable variant: fsync after
// every record. The gap against BenchmarkArchiveAppend is the price of
// zero-loss durability per cycle.
func BenchmarkArchiveAppendSync(b *testing.B) {
	r := getUsageRunner(b)
	sn := r.Mon.Latest("fixw")
	if sn == nil {
		b.Fatal("no snapshot")
	}
	l := logger.New()
	store, err := logger.OpenStore(b.TempDir(), logger.StoreOptions{SyncEveryAppend: true})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := *sn
		cp.At = sn.At.Add(time.Duration(i) * time.Hour)
		rec := l.Append(&cp)
		if err := store.AppendDelta("fixw", rec, uint64(len(cp.Pairs)+len(cp.Routes))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchiveColdRecovery measures restart recovery of a 200-cycle
// archive (checkpoint every 50 cycles): open, scan, verify CRCs, load the
// checkpoint and replay the tail into a fresh logger.
func BenchmarkArchiveColdRecovery(b *testing.B) {
	r := getUsageRunner(b)
	sn := r.Mon.Latest("fixw")
	if sn == nil {
		b.Fatal("no snapshot")
	}
	dir := b.TempDir()
	store, err := logger.OpenStore(dir, logger.StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	l := logger.New()
	for i := 0; i < 200; i++ {
		cp := *sn
		cp.At = sn.At.Add(time.Duration(i) * time.Hour)
		rec := l.Append(&cp)
		if err := store.AppendDelta("fixw", rec, uint64(len(cp.Pairs)+len(cp.Routes))); err != nil {
			b.Fatal(err)
		}
		if (i+1)%50 == 0 {
			if err := store.WriteCheckpoint(l, nil, cp.At); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := logger.OpenStore(dir, logger.StoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ra := s.Recover()
		if ra.Logger.Cycles("fixw") != 200 {
			b.Fatalf("recovered %d cycles", ra.Logger.Cycles("fixw"))
		}
		s.Close()
	}
}

// BenchmarkDetectLatency measures every library incident end to end —
// schedule, detect, resolve — and reports the detection latency in
// monitoring cycles under clean collection. The same contract the chaos
// proofs assert (TestChaosIncidentDetection) becomes a tracked number:
// cycles/detect per scenario, captured in BENCH_detect.json.
func BenchmarkDetectLatency(b *testing.B) {
	for _, name := range netsim.LibraryScenarios() {
		b.Run(name, func(b *testing.B) {
			var latency int
			for i := 0; i < b.N; i++ {
				latency = runIncidentScenario(b, name, nil)
			}
			b.ReportMetric(float64(latency), "cycles/detect")
		})
	}
}
