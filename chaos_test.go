package mantra_test

// Chaos test for the resilient collection path: one router is wrapped in
// the session-fault layer with ~30% of sessions failing in assorted ways
// (refused connections, rejected logins, hangs, truncation, garbling,
// drops) while a second router stays healthy. Over a long run the monitor
// must never panic, never abort a cycle, never ingest a corrupted
// snapshot, and never let the faulty target's trouble leak into the
// healthy target's series. Faults draw from the simulation's seeded RNG,
// so the run is deterministic.

import (
	"testing"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/netsim"
	"repro/internal/router"
	"repro/internal/topo"
	"repro/internal/workload"
)

// chaosMonitor builds a 2-router monitored network with fault injection on
// fixw and a clean path to ucsb-r1.
func chaosMonitor(t *testing.T, profile router.FaultProfile, policy collect.Policy) (*netsim.Network, *mantra.Monitor, *router.FaultyRouter) {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-r1"); err != nil {
		t.Fatal(err)
	}
	faulty := n.FaultyRouter("fixw", profile)
	if faulty == nil {
		t.Fatal("no faulty router")
	}
	m := mantra.New()
	m.SetCollectPolicy(policy)
	n.Router("fixw").Password = "pw"
	n.Router("ucsb-r1").Password = "pw"
	m.AddTarget(mantra.Target{
		Name:     "fixw",
		Dialer:   collect.PipeDialer{Router: faulty},
		Password: "pw",
		Prompt:   "fixw> ",
		Timeout:  100 * time.Millisecond,
	})
	m.AddTarget(mantra.Target{
		Name:     "ucsb-r1",
		Dialer:   collect.PipeDialer{Router: n.Router("ucsb-r1")},
		Password: "pw",
		Prompt:   "ucsb-r1> ",
		Timeout:  5 * time.Second,
	})
	return n, m, faulty
}

func TestChaosCollection(t *testing.T) {
	profile := router.FaultProfile{
		RefuseConn:  0.06,
		RejectLogin: 0.05,
		Hang:        0.05,
		Truncate:    0.05,
		Garble:      0.05,
		Drop:        0.04,
	}
	n, m, faulty := chaosMonitor(t, profile, collect.Policy{
		MaxAttempts:      2,
		BreakerThreshold: 3,
		BreakerCooldown:  90 * time.Minute,
		Sleep:            func(time.Duration) {},
	})

	const cycles = 220
	counts := map[collect.Status]int{}
	for i := 0; i < cycles; i++ {
		n.Step()
		_, err := m.RunCycle(n.Now())
		if err != nil {
			t.Fatalf("cycle %d aborted with a healthy target present: %v", i, err)
		}
		results := m.LastResults()
		if len(results) != 2 {
			t.Fatalf("cycle %d results = %d", i, len(results))
		}
		fixw, healthy := results[0], results[1]
		counts[fixw.Status]++
		if healthy.Status != collect.StatusOK {
			t.Fatalf("cycle %d: healthy target contaminated: %+v", i, healthy)
		}
		if fixw.Stats != nil {
			// Any snapshot that made it through must match ground truth —
			// a truncated or garbled dump slipping past validation would
			// show up here as a wrong route count.
			r := n.Router("fixw")
			if want := len(r.DVMRP.Table(r.Spec.ID)); fixw.Stats.Routes != want {
				t.Fatalf("cycle %d ingested a corrupted snapshot: routes = %d, want %d",
					i, fixw.Stats.Routes, want)
			}
		}
	}

	// The healthy target's series must be gap-free and complete.
	healthy := m.Series("ucsb-r1", mantra.MetricSessions)
	if healthy.Len() != cycles || healthy.GapCount() != 0 {
		t.Errorf("healthy series: %d points, %d gaps; want %d, 0",
			healthy.Len(), healthy.GapCount(), cycles)
	}
	// The faulty target's series must account for every cycle: a point on
	// success, an explicit gap otherwise.
	fs := m.Series("fixw", mantra.MetricSessions)
	if fs.Len()+fs.GapCount() != cycles {
		t.Errorf("faulty series: %d points + %d gaps != %d cycles",
			fs.Len(), fs.GapCount(), cycles)
	}
	if ok := counts[collect.StatusOK] + counts[collect.StatusRetried]; fs.Len() != ok {
		t.Errorf("faulty series has %d points, %d cycles succeeded", fs.Len(), ok)
	}
	// Sanity: the chaos actually happened, and the target still mostly
	// collected (retries absorb most single-attempt faults).
	if counts[collect.StatusRetried] == 0 {
		t.Error("no cycle needed a retry — fault injection inert?")
	}
	if counts[collect.StatusDegraded]+counts[collect.StatusBreakerOpen] == 0 {
		t.Error("no cycle degraded over the whole chaos run")
	}
	if counts[collect.StatusOK] == 0 {
		t.Error("no clean cycle over the whole chaos run")
	}
	injected := 0
	for _, c := range faulty.Injected() {
		injected += c
	}
	if injected == 0 {
		t.Error("no faults injected")
	}
	t.Logf("statuses: %v; injected: %v", counts, faulty.Injected())
}

// TestChaosBreakerLifecycle drives a fully dead target through the whole
// breaker arc under simulated time: closed → open after the threshold,
// cooldown skips, a failed half-open probe re-opening it, then recovery to
// closed once the router heals.
func TestChaosBreakerLifecycle(t *testing.T) {
	n, m, faulty := chaosMonitor(t, router.FaultProfile{RefuseConn: 1}, collect.Policy{
		MaxAttempts:      1,
		BreakerThreshold: 3,
		BreakerCooldown:  90 * time.Minute, // three 30-minute sim cycles
		Sleep:            func(time.Duration) {},
	})
	cycle := func() mantra.CollectResult {
		t.Helper()
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatalf("cycle aborted: %v", err)
		}
		return m.LastResults()[0]
	}

	// Three failed cycles open the breaker.
	for i := 0; i < 3; i++ {
		if r := cycle(); r.Status != collect.StatusDegraded {
			t.Fatalf("cycle %d = %+v, want degraded", i, r)
		}
	}
	if h := m.Health()[0]; h.Breaker != collect.BreakerOpen || h.ConsecutiveFailures != 3 {
		t.Fatalf("breaker did not open: %+v", h)
	}
	// Two cycles inside the 90-minute cooldown are skipped outright.
	for i := 0; i < 2; i++ {
		if r := cycle(); r.Status != collect.StatusBreakerOpen || r.Attempts != 0 {
			t.Fatalf("cooldown cycle %d = %+v, want breaker-open skip", i, r)
		}
	}
	// The cooldown has elapsed: a half-open probe runs, fails, re-opens.
	if r := cycle(); r.Status != collect.StatusDegraded || r.Attempts != 1 {
		t.Fatalf("probe cycle = %+v, want a single failed attempt", r)
	}
	if r := cycle(); r.Status != collect.StatusBreakerOpen {
		t.Fatalf("after failed probe = %+v, want breaker-open", r)
	}

	// Heal the router; the next probe closes the breaker and collection
	// resumes.
	faulty.Profile = router.FaultProfile{}
	if r := cycle(); r.Status != collect.StatusBreakerOpen {
		t.Fatalf("still cooling down = %+v", r)
	}
	if r := cycle(); r.Status != collect.StatusOK {
		t.Fatalf("recovery probe = %+v, want ok", r)
	}
	h := m.Health()[0]
	if h.Breaker != collect.BreakerClosed || h.ConsecutiveFailures != 0 {
		t.Errorf("breaker did not recover: %+v", h)
	}
	if h.LastSuccess.IsZero() || h.LastError != "" {
		t.Errorf("health not reset on recovery: %+v", h)
	}
	if r := cycle(); r.Status != collect.StatusOK {
		t.Errorf("post-recovery cycle = %+v", r)
	}
}
