package mantra_test

// Chaos test for the resilient collection path: one router is wrapped in
// the session-fault layer with ~30% of sessions failing in assorted ways
// (refused connections, rejected logins, hangs, truncation, garbling,
// drops) while a second router stays healthy. Over a long run the monitor
// must never panic, never abort a cycle, never ingest a corrupted
// snapshot, and never let the faulty target's trouble leak into the
// healthy target's series. Faults draw from the simulation's seeded RNG,
// so the run is deterministic.

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/netsim"
	"repro/internal/router"
	"repro/internal/topo"
	"repro/internal/workload"
)

// chaosMonitor builds a 2-router monitored network with fault injection on
// fixw and a clean path to ucsb-r1.
func chaosMonitor(t *testing.T, profile router.FaultProfile, policy collect.Policy) (*netsim.Network, *mantra.Monitor, *router.FaultyRouter) {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-r1"); err != nil {
		t.Fatal(err)
	}
	faulty := n.FaultyRouter("fixw", profile)
	if faulty == nil {
		t.Fatal("no faulty router")
	}
	m := mantra.New()
	m.SetCollectPolicy(policy)
	n.Router("fixw").Password = "pw"
	n.Router("ucsb-r1").Password = "pw"
	m.AddTarget(mantra.Target{
		Name:     "fixw",
		Dialer:   collect.PipeDialer{Router: faulty},
		Password: "pw",
		Prompt:   "fixw> ",
		Timeout:  100 * time.Millisecond,
	})
	m.AddTarget(mantra.Target{
		Name:     "ucsb-r1",
		Dialer:   collect.PipeDialer{Router: n.Router("ucsb-r1")},
		Password: "pw",
		Prompt:   "ucsb-r1> ",
		Timeout:  5 * time.Second,
	})
	return n, m, faulty
}

func TestChaosCollection(t *testing.T) {
	profile := router.FaultProfile{
		RefuseConn:  0.06,
		RejectLogin: 0.05,
		Hang:        0.05,
		Truncate:    0.05,
		Garble:      0.05,
		Drop:        0.04,
	}
	n, m, faulty := chaosMonitor(t, profile, collect.Policy{
		MaxAttempts:      2,
		BreakerThreshold: 3,
		BreakerCooldown:  90 * time.Minute,
		Sleep:            func(time.Duration) {},
	})

	const cycles = 220
	counts := map[collect.Status]int{}
	for i := 0; i < cycles; i++ {
		n.Step()
		_, err := m.RunCycle(n.Now())
		if err != nil {
			t.Fatalf("cycle %d aborted with a healthy target present: %v", i, err)
		}
		results := m.LastResults()
		if len(results) != 2 {
			t.Fatalf("cycle %d results = %d", i, len(results))
		}
		fixw, healthy := results[0], results[1]
		counts[fixw.Status]++
		if healthy.Status != collect.StatusOK {
			t.Fatalf("cycle %d: healthy target contaminated: %+v", i, healthy)
		}
		if fixw.Stats != nil {
			// Any snapshot that made it through must match ground truth —
			// a truncated or garbled dump slipping past validation would
			// show up here as a wrong route count.
			r := n.Router("fixw")
			if want := len(r.DVMRP.Table(r.Spec.ID)); fixw.Stats.Routes != want {
				t.Fatalf("cycle %d ingested a corrupted snapshot: routes = %d, want %d",
					i, fixw.Stats.Routes, want)
			}
		}
	}

	// The healthy target's series must be gap-free and complete.
	healthy := m.Series("ucsb-r1", mantra.MetricSessions)
	if healthy.Len() != cycles || healthy.GapCount() != 0 {
		t.Errorf("healthy series: %d points, %d gaps; want %d, 0",
			healthy.Len(), healthy.GapCount(), cycles)
	}
	// The faulty target's series must account for every cycle: a point on
	// success, an explicit gap otherwise.
	fs := m.Series("fixw", mantra.MetricSessions)
	if fs.Len()+fs.GapCount() != cycles {
		t.Errorf("faulty series: %d points + %d gaps != %d cycles",
			fs.Len(), fs.GapCount(), cycles)
	}
	if ok := counts[collect.StatusOK] + counts[collect.StatusRetried]; fs.Len() != ok {
		t.Errorf("faulty series has %d points, %d cycles succeeded", fs.Len(), ok)
	}
	// Sanity: the chaos actually happened, and the target still mostly
	// collected (retries absorb most single-attempt faults).
	if counts[collect.StatusRetried] == 0 {
		t.Error("no cycle needed a retry — fault injection inert?")
	}
	if counts[collect.StatusDegraded]+counts[collect.StatusBreakerOpen] == 0 {
		t.Error("no cycle degraded over the whole chaos run")
	}
	if counts[collect.StatusOK] == 0 {
		t.Error("no clean cycle over the whole chaos run")
	}
	injected := 0
	for _, c := range faulty.Injected() {
		injected += c
	}
	if injected == 0 {
		t.Error("no faults injected")
	}
	t.Logf("statuses: %v; injected: %v", counts, faulty.Injected())
}

// TestChaosBreakerLifecycle drives a fully dead target through the whole
// breaker arc under simulated time: closed → open after the threshold,
// cooldown skips, a failed half-open probe re-opening it, then recovery to
// closed once the router heals.
func TestChaosBreakerLifecycle(t *testing.T) {
	n, m, faulty := chaosMonitor(t, router.FaultProfile{RefuseConn: 1}, collect.Policy{
		MaxAttempts:      1,
		BreakerThreshold: 3,
		BreakerCooldown:  90 * time.Minute, // three 30-minute sim cycles
		Sleep:            func(time.Duration) {},
	})
	cycle := func() mantra.CollectResult {
		t.Helper()
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatalf("cycle aborted: %v", err)
		}
		return m.LastResults()[0]
	}

	// Three failed cycles open the breaker.
	for i := 0; i < 3; i++ {
		if r := cycle(); r.Status != collect.StatusDegraded {
			t.Fatalf("cycle %d = %+v, want degraded", i, r)
		}
	}
	if h := m.Health()[0]; h.Breaker != collect.BreakerOpen || h.ConsecutiveFailures != 3 {
		t.Fatalf("breaker did not open: %+v", h)
	}
	// Two cycles inside the 90-minute cooldown are skipped outright.
	for i := 0; i < 2; i++ {
		if r := cycle(); r.Status != collect.StatusBreakerOpen || r.Attempts != 0 {
			t.Fatalf("cooldown cycle %d = %+v, want breaker-open skip", i, r)
		}
	}
	// The cooldown has elapsed: a half-open probe runs, fails, re-opens.
	if r := cycle(); r.Status != collect.StatusDegraded || r.Attempts != 1 {
		t.Fatalf("probe cycle = %+v, want a single failed attempt", r)
	}
	if r := cycle(); r.Status != collect.StatusBreakerOpen {
		t.Fatalf("after failed probe = %+v, want breaker-open", r)
	}

	// Heal the router; the next probe closes the breaker and collection
	// resumes.
	faulty.Profile = router.FaultProfile{}
	if r := cycle(); r.Status != collect.StatusBreakerOpen {
		t.Fatalf("still cooling down = %+v", r)
	}
	if r := cycle(); r.Status != collect.StatusOK {
		t.Fatalf("recovery probe = %+v, want ok", r)
	}
	h := m.Health()[0]
	if h.Breaker != collect.BreakerClosed || h.ConsecutiveFailures != 0 {
		t.Errorf("breaker did not recover: %+v", h)
	}
	if h.LastSuccess.IsZero() || h.LastError != "" {
		t.Errorf("health not reset on recovery: %+v", h)
	}
	if r := cycle(); r.Status != collect.StatusOK {
		t.Errorf("post-recovery cycle = %+v", r)
	}
}

// ---- Scripted-incident chaos proofs ----
//
// The scenario library in internal/netsim scripts protocol-level
// incidents (RP loss, SA storms, MBGP leaks, unicast-route injection,
// prune storms) against the virtual clock; each scenario carries its
// detection contract (kind, watch targets, latency bounds). The proofs
// below run every library scenario under clean AND fault-degraded
// collection and assert the detector framework honors those contracts:
// bounded detection latency (plus one cycle of slack per collection
// gap), no false resolution while the incident is active, and bounded
// resolution latency after it ends.

// incidentMonitor builds the 3-target monitored network the library
// scenarios assume: dom00 transitioned to native sparse mode, scripted
// faults only (no random background failures), and the primary watch
// target optionally wrapped in the session-fault layer.
func incidentMonitor(t testing.TB, profile *router.FaultProfile, primary string) (*netsim.Network, *mantra.Monitor) {
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	ncfg := netsim.DefaultConfig()
	ncfg.FlapPerDomainPerCycle = 0
	ncfg.RestartPerCycle = 0
	n := netsim.New(inet, wl, ncfg)
	targets := []string{"fixw", "ucsb-r1", "dom00-gw"}
	if err := n.Track(targets...); err != nil {
		t.Fatal(err)
	}
	n.Step()
	n.Step()
	n.TransitionDomain("dom00")
	m := mantra.New()
	m.SetCollectPolicy(collect.Policy{
		MaxAttempts: 3,
		// The latency proofs reason in gaps, not breaker skips: keep the
		// breaker out of the arithmetic.
		BreakerThreshold: 1 << 20,
		BreakerCooldown:  90 * time.Minute,
		Sleep:            func(time.Duration) {},
	})
	for _, name := range targets {
		n.Router(name).Password = "pw"
		tgt := mantra.Target{
			Name:     name,
			Dialer:   collect.PipeDialer{Router: n.Router(name)},
			Password: "pw",
			Prompt:   name + "> ",
			Timeout:  5 * time.Second,
		}
		if profile != nil && name == primary {
			tgt.Dialer = collect.PipeDialer{Router: n.FaultyRouter(name, *profile)}
			tgt.Timeout = 100 * time.Millisecond
		}
		m.AddTarget(tgt)
	}
	return n, m
}

// degradedProfile is the session-fault mix applied to the primary watch
// target in the degraded arm of the incident proofs: enough trouble
// that collection gaps actually occur over a scenario, mild enough that
// retries absorb most of it.
func degradedProfile() *router.FaultProfile {
	return &router.FaultProfile{
		RefuseConn: 0.05,
		Hang:       0.04,
		Truncate:   0.05,
		Garble:     0.04,
		Drop:       0.04,
	}
}

// runIncidentScenario drives one library scenario under a fault profile
// (nil = clean collection) and asserts its detection contract. It
// returns the observed detection latency in cycles from the incident
// becoming visible.
func runIncidentScenario(t testing.TB, name string, profile *router.FaultProfile) int {
	const (
		warmup   = 10
		duration = 6
	)
	sc, err := netsim.LibraryScenario(name, 1, duration)
	if err != nil {
		t.Fatal(err)
	}
	primary := sc.Watch[0]
	n, m := incidentMonitor(t, profile, primary)
	gapCount := func() int {
		s := m.Series(primary, mantra.MetricRoutes)
		if s == nil {
			return 0
		}
		return s.GapCount()
	}
	episode := func() *mantra.Anomaly {
		for _, a := range m.Anomalies() {
			if a.Kind == sc.DetectKind && a.Target == primary {
				return &a
			}
		}
		return nil
	}
	runCycle := func() {
		t.Helper()
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < warmup; i++ {
		runCycle()
	}
	if a := episode(); a != nil {
		t.Fatalf("anomaly open before the incident: %+v", a)
	}
	if err := n.ScheduleScenario(sc); err != nil {
		t.Fatal(err)
	}

	// The begin event fires at the boundary of the next cycle, before
	// that cycle's protocol ticks, so the incident is visible to
	// collection from offset 1 on.
	startGaps := gapCount()
	detected := 0
	for off := 1; off <= duration; off++ {
		runCycle()
		a := episode()
		if a == nil {
			continue
		}
		if detected == 0 {
			detected = off
		}
		if a.Resolved {
			t.Fatalf("cycle %d: anomaly resolved while the incident is active: %+v", off, a)
		}
	}
	if detected == 0 {
		t.Fatalf("%s at %s not detected within the incident's %d cycles", sc.DetectKind, primary, duration)
	}
	if slack := gapCount() - startGaps; detected > sc.MaxDetectCycles+slack {
		t.Errorf("detection latency = %d cycles, bound %d (+%d gap slack)",
			detected, sc.MaxDetectCycles, slack)
	}

	// The end event fires at the boundary of cycle duration+1; the
	// episode must resolve within MaxResolveCycles of it, again with one
	// cycle of slack per collection gap (a gap can neither observe the
	// recovery nor falsely resolve the episode).
	endGaps := gapCount()
	resolvedIn := 0
	for off := 1; off <= sc.MaxResolveCycles+8; off++ {
		runCycle()
		a := episode()
		if a == nil {
			t.Fatal("episode vanished from the anomaly log")
		}
		if a.Resolved {
			resolvedIn = off
			break
		}
	}
	if resolvedIn == 0 {
		t.Fatalf("%s at %s never resolved after the incident ended", sc.DetectKind, primary)
	}
	if slack := gapCount() - endGaps; resolvedIn > sc.MaxResolveCycles+slack {
		t.Errorf("resolution latency = %d cycles, bound %d (+%d gap slack)",
			resolvedIn, sc.MaxResolveCycles, slack)
	}
	// Exactly one episode per incident: the frozen-baseline lifecycle
	// must not double-report while the signature persists.
	count := 0
	for _, a := range m.Anomalies() {
		if a.Kind == sc.DetectKind && a.Target == primary {
			count++
		}
	}
	if count != 1 {
		t.Errorf("episodes of %s at %s = %d, want 1", sc.DetectKind, primary, count)
	}
	return detected
}

// TestChaosIncidentDetection is the incidents x fault-profiles table:
// every library scenario must satisfy its detection contract under both
// clean and degraded collection.
func TestChaosIncidentDetection(t *testing.T) {
	profiles := []struct {
		name    string
		profile *router.FaultProfile
	}{
		{"clean", nil},
		{"degraded", degradedProfile()},
	}
	for _, name := range netsim.LibraryScenarios() {
		for _, prof := range profiles {
			t.Run(name+"/"+prof.name, func(t *testing.T) {
				latency := runIncidentScenario(t, name, prof.profile)
				t.Logf("%s under %s collection: detected in %d cycles", name, prof.name, latency)
			})
		}
	}
}

// TestChaosSerialPipelinedAnomalyIdentity proves the anomaly log is
// schedule-independent: two same-seed networks running overlapping
// incidents under degraded collection — one monitored by the serial
// engine, one by the pipelined engine — must produce byte-identical
// anomaly logs and health rollups.
func TestChaosSerialPipelinedAnomalyIdentity(t *testing.T) {
	run := func(pipelined bool) []byte {
		sc, err := netsim.LibraryScenario("sa-storm", 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		n, m := incidentMonitor(t, degradedProfile(), sc.Watch[0])
		cycle := func() {
			t.Helper()
			n.Step()
			var err error
			if pipelined {
				_, err = m.RunCycleConcurrent(n.Now())
			} else {
				_, err = m.RunCycle(n.Now())
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			cycle()
		}
		if err := n.ScheduleScenario(sc); err != nil {
			t.Fatal(err)
		}
		sc2, err := netsim.LibraryScenario("unicast-injection", 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.ScheduleScenario(sc2); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 14; i++ {
			cycle()
		}
		anomalies := m.Anomalies()
		if len(anomalies) == 0 {
			t.Fatal("no anomalies to compare")
		}
		blob, err := json.Marshal(struct {
			Anomalies []mantra.Anomaly     `json:"anomalies"`
			Rollup    mantra.AnomalyRollup `json:"rollup"`
		}{anomalies, m.AnomalyRollup()})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(false)
	pipelined := run(true)
	if !bytes.Equal(serial, pipelined) {
		t.Errorf("serial and pipelined anomaly logs diverge:\n serial:    %s\n pipelined: %s", serial, pipelined)
	}
}
