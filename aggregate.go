package mantra

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/core/engine"
	"repro/internal/core/tables"
)

// AggregateTarget is the synthetic target name under which combined
// results are published when aggregation is enabled.
const AggregateTarget = "aggregate"

// EnableAggregation turns on the enhancement the paper's conclusion
// announces as work in progress: collecting from multiple routers
// concurrently and generating combined results in real time. Each cycle,
// the per-router snapshots are merged into a global view published under
// the AggregateTarget name: sessions and participants are deduplicated
// across collection points (a pair seen at several routers is one pair),
// and routes are merged on best metric.
func (m *Monitor) EnableAggregation() {
	m.aggregate = true
}

// RunCycleConcurrent is RunCycle with pipelined parallel collection:
// targets are dialed and dumped on a bounded worker pool (Concurrency
// workers, default min(8, targets) — no longer a goroutine per target),
// and a sequence-numbered reorder buffer hands finished targets to
// processing in registration order, so results stay deterministic and
// identical to the serial path while a slow router no longer stalls the
// processing of the healthy ones. Failing targets degrade the cycle
// exactly as in RunCycle — skipped, recorded, gap-marked — they never
// abort it. With aggregation enabled, the merged view over the targets
// that succeeded is processed last.
func (m *Monitor) RunCycleConcurrent(now time.Time) ([]CycleStats, error) {
	return m.runEngine(now, engine.Options{Concurrency: m.Concurrency()})
}

// MergeSnapshots combines several routers' cycle snapshots into one
// aggregate view:
//
//   - Pair table: deduplicated on (source, group); the highest observed
//     rate wins (different routers see the same stream at different
//     points of its tree), counters take the maximum, uptime the longest.
//   - Route table: deduplicated on prefix with the best (lowest) metric.
//
// The merge is order-independent: ties are broken by a total order over
// the entry fields rather than by arrival, so any permutation of snaps
// produces an identical aggregate — which is what lets the pipelined
// cycle engine merge snapshots without caring how collection finished.
//
// This is the "aggregate views from multiple collection points" the
// paper's conclusion calls for once sparse mode made any single vantage
// incomplete.
func MergeSnapshots(name string, at time.Time, snaps ...*tables.Snapshot) *tables.Snapshot {
	out := &tables.Snapshot{Target: name, At: at}
	type pk struct{ s, g addr.IP }
	pairs := make(map[pk]tables.PairEntry)
	routes := make(map[addr.Prefix]tables.RouteEntry)
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		for _, e := range sn.Pairs {
			k := pk{s: e.Source, g: e.Group}
			cur, ok := pairs[k]
			if !ok {
				pairs[k] = e
				continue
			}
			pairs[k] = mergePair(cur, e)
		}
		for _, e := range sn.Routes {
			cur, ok := routes[e.Prefix]
			if !ok || routePreferred(e, cur) {
				routes[e.Prefix] = e
			}
		}
	}
	for _, e := range pairs {
		out.Pairs = append(out.Pairs, e)
	}
	sort.Slice(out.Pairs, func(i, j int) bool {
		if out.Pairs[i].Group != out.Pairs[j].Group {
			return out.Pairs[i].Group < out.Pairs[j].Group
		}
		return out.Pairs[i].Source < out.Pairs[j].Source
	})
	for _, e := range routes {
		out.Routes = append(out.Routes, e)
	}
	sort.Slice(out.Routes, func(i, j int) bool {
		return out.Routes[i].Prefix.Compare(out.Routes[j].Prefix) < 0
	})
	return out
}

// mergePair combines two observations of the same (source, group) pair.
// Rates and counters take the field-wise maximum; uptime, its anchored
// Since, and the flag string travel together from the dominant entry —
// the longer-lived one, ties broken by earlier Since then smaller flag
// string — so the merge commutes.
func mergePair(a, b tables.PairEntry) tables.PairEntry {
	dom, other := a, b
	if pairDominates(b, a) {
		dom, other = b, a
	}
	if other.RateKbps > dom.RateKbps {
		dom.RateKbps = other.RateKbps
	}
	if other.Packets > dom.Packets {
		dom.Packets = other.Packets
	}
	return dom
}

// pairDominates reports whether a wins the uptime/flags tie-break over b.
func pairDominates(a, b tables.PairEntry) bool {
	if a.Uptime != b.Uptime {
		return a.Uptime > b.Uptime
	}
	if !a.Since.Equal(b.Since) {
		return a.Since.Before(b.Since)
	}
	return a.Flags < b.Flags
}

// routePreferred reports whether route a beats b for the same prefix:
// best (lowest) metric, then longest uptime, then a stable total order
// over the remaining fields so the choice never depends on which
// vantage's table arrived first.
func routePreferred(a, b tables.RouteEntry) bool {
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	if a.Uptime != b.Uptime {
		return a.Uptime > b.Uptime
	}
	if !a.Since.Equal(b.Since) {
		return a.Since.Before(b.Since)
	}
	if a.Local != b.Local {
		return a.Local
	}
	return a.Gateway < b.Gateway
}
