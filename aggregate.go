package mantra

import (
	"time"

	"repro/internal/core/engine"
	"repro/internal/core/tables"
)

// AggregateTarget is the synthetic target name under which combined
// results are published when aggregation is enabled.
const AggregateTarget = "aggregate"

// EnableAggregation turns on the enhancement the paper's conclusion
// announces as work in progress: collecting from multiple routers
// concurrently and generating combined results in real time. Each cycle,
// the per-router snapshots are merged into a global view published under
// the AggregateTarget name: sessions and participants are deduplicated
// across collection points (a pair seen at several routers is one pair),
// and routes are merged on best metric.
func (m *Monitor) EnableAggregation() {
	m.aggregate = true
}

// RunCycleConcurrent is RunCycle with pipelined parallel collection:
// targets are dialed and dumped on a bounded worker pool (Concurrency
// workers, default min(8, targets) — no longer a goroutine per target),
// and a sequence-numbered reorder buffer hands finished targets to
// processing in registration order, so results stay deterministic and
// identical to the serial path while a slow router no longer stalls the
// processing of the healthy ones. Failing targets degrade the cycle
// exactly as in RunCycle — skipped, recorded, gap-marked — they never
// abort it. With aggregation enabled, the merged view over the targets
// that succeeded is processed last.
func (m *Monitor) RunCycleConcurrent(now time.Time) ([]CycleStats, error) {
	return m.runEngine(now, engine.Options{Concurrency: m.Concurrency()})
}

// MergeSnapshots combines several routers' cycle snapshots into one
// aggregate view: pairs deduplicated on (source, group) with field-wise
// maxima, routes on best metric, and — when the same target appears more
// than once, as in a shard-handoff race — only that target's newest
// snapshot participating. The merge is order-independent; see
// tables.MergeSnapshots for the full contract.
//
// This is the "aggregate views from multiple collection points" the
// paper's conclusion calls for once sparse mode made any single vantage
// incomplete. The implementation lives in the tables package so the
// shard supervisor's fan-in tier can share it without importing the
// Monitor.
func MergeSnapshots(name string, at time.Time, snaps ...*tables.Snapshot) *tables.Snapshot {
	return tables.MergeSnapshots(name, at, snaps...)
}
