package mantra

import (
	"sort"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
)

// AggregateTarget is the synthetic target name under which combined
// results are published when aggregation is enabled.
const AggregateTarget = "aggregate"

// EnableAggregation turns on the enhancement the paper's conclusion
// announces as work in progress: collecting from multiple routers
// concurrently and generating combined results in real time. Each cycle,
// the per-router snapshots are merged into a global view published under
// the AggregateTarget name: sessions and participants are deduplicated
// across collection points (a pair seen at several routers is one pair),
// and routes are merged on best metric.
func (m *Monitor) EnableAggregation() {
	m.aggregate = true
}

// RunCycleConcurrent is RunCycle with parallel collection: every target
// is dialed and dumped on its own goroutine, then the snapshots are
// processed in registration order so results stay deterministic. Failing
// targets degrade the cycle exactly as in RunCycle — skipped, recorded,
// gap-marked — they never abort it. With aggregation enabled, the merged
// view over the targets that succeeded is processed last.
func (m *Monitor) RunCycleConcurrent(now time.Time) ([]CycleStats, error) {
	outcomes := make([]cycleOutcome, len(m.targets))
	var wg sync.WaitGroup
	for i, t := range m.targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			outcomes[i] = m.collectTarget(t, now)
		}(i, t)
	}
	wg.Wait()
	return m.processOutcomes(now, outcomes)
}

// MergeSnapshots combines several routers' cycle snapshots into one
// aggregate view:
//
//   - Pair table: deduplicated on (source, group); the highest observed
//     rate wins (different routers see the same stream at different
//     points of its tree), counters take the maximum, uptime the longest.
//   - Route table: deduplicated on prefix with the best (lowest) metric.
//
// This is the "aggregate views from multiple collection points" the
// paper's conclusion calls for once sparse mode made any single vantage
// incomplete.
func MergeSnapshots(name string, at time.Time, snaps ...*tables.Snapshot) *tables.Snapshot {
	out := &tables.Snapshot{Target: name, At: at}
	type pk struct{ s, g addr.IP }
	pairs := make(map[pk]tables.PairEntry)
	routes := make(map[addr.Prefix]tables.RouteEntry)
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		for _, e := range sn.Pairs {
			k := pk{s: e.Source, g: e.Group}
			cur, ok := pairs[k]
			if !ok {
				pairs[k] = e
				continue
			}
			if e.RateKbps > cur.RateKbps {
				cur.RateKbps = e.RateKbps
			}
			if e.Packets > cur.Packets {
				cur.Packets = e.Packets
			}
			if e.Uptime > cur.Uptime {
				cur.Uptime = e.Uptime
				cur.Since = e.Since
			}
			pairs[k] = cur
		}
		for _, e := range sn.Routes {
			cur, ok := routes[e.Prefix]
			if !ok || e.Metric < cur.Metric {
				routes[e.Prefix] = e
			}
		}
	}
	for _, e := range pairs {
		out.Pairs = append(out.Pairs, e)
	}
	sort.Slice(out.Pairs, func(i, j int) bool {
		if out.Pairs[i].Group != out.Pairs[j].Group {
			return out.Pairs[i].Group < out.Pairs[j].Group
		}
		return out.Pairs[i].Source < out.Pairs[j].Source
	})
	for _, e := range routes {
		out.Routes = append(out.Routes, e)
	}
	sort.Slice(out.Routes, func(i, j int) bool {
		return out.Routes[i].Prefix.Compare(out.Routes[j].Prefix) < 0
	})
	return out
}
