package mantra_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	mantra "repro"
	"repro/internal/addr"
	"repro/internal/core/collect"
	"repro/internal/core/tables"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func TestMergeSnapshotsDedup(t *testing.T) {
	s1 := &tables.Snapshot{Target: "a", At: sim.Epoch, Pairs: tables.PairTable{
		{Source: addr.MustParse("1.1.1.1"), Group: addr.MustParse("224.1.1.1"), RateKbps: 64, Packets: 100, Uptime: time.Hour},
		{Source: addr.MustParse("2.2.2.2"), Group: addr.MustParse("224.1.1.1"), RateKbps: 1},
	}, Routes: tables.RouteTable{
		{Prefix: addr.MustParsePrefix("10.0.0.0/8"), Metric: 3},
	}}
	s2 := &tables.Snapshot{Target: "b", At: sim.Epoch, Pairs: tables.PairTable{
		// Same pair seen elsewhere with lower rate but longer uptime.
		{Source: addr.MustParse("1.1.1.1"), Group: addr.MustParse("224.1.1.1"), RateKbps: 50, Packets: 200, Uptime: 2 * time.Hour},
		{Source: addr.MustParse("3.3.3.3"), Group: addr.MustParse("224.1.1.2"), RateKbps: 2},
	}, Routes: tables.RouteTable{
		{Prefix: addr.MustParsePrefix("10.0.0.0/8"), Metric: 1},
		{Prefix: addr.MustParsePrefix("11.0.0.0/8"), Metric: 2},
	}}
	agg := mantra.MergeSnapshots("aggregate", sim.Epoch, s1, s2, nil)
	if agg.Target != "aggregate" {
		t.Errorf("target = %q", agg.Target)
	}
	if len(agg.Pairs) != 3 {
		t.Fatalf("pairs = %d, want 3 (dedup)", len(agg.Pairs))
	}
	first := agg.Pairs[0]
	if first.RateKbps != 64 || first.Packets != 200 || first.Uptime != 2*time.Hour {
		t.Errorf("merged pair = %+v", first)
	}
	if len(agg.Routes) != 2 {
		t.Fatalf("routes = %d", len(agg.Routes))
	}
	if agg.Routes[0].Metric != 1 {
		t.Errorf("merged route metric = %d, want best (1)", agg.Routes[0].Metric)
	}
}

// TestMergeSnapshotsOrderIndependent: any permutation of the input
// snapshots must merge to the identical aggregate — the property that
// lets the cycle engine merge without caring how collection finished.
// The inputs deliberately include every tie the merge breaks: equal
// uptimes with different Since, equal metrics, field-wise max races.
func TestMergeSnapshotsOrderIndependent(t *testing.T) {
	src := addr.MustParse("1.1.1.1")
	grp := addr.MustParse("224.1.1.1")
	mk := func(target string, rate float64, pkts uint64, up time.Duration, since time.Time, flags string, metric int) *tables.Snapshot {
		return &tables.Snapshot{Target: target, At: sim.Epoch, Pairs: tables.PairTable{
			{Source: src, Group: grp, RateKbps: rate, Packets: pkts, Uptime: up, Since: since, Flags: flags},
		}, Routes: tables.RouteTable{
			{Prefix: addr.MustParsePrefix("10.0.0.0/8"), Metric: metric, Uptime: up, Since: since},
		}}
	}
	snaps := []*tables.Snapshot{
		mk("a", 64, 100, time.Hour, sim.Epoch.Add(-time.Hour), "DP", 3),
		mk("b", 50, 200, 2*time.Hour, sim.Epoch.Add(-2*time.Hour), "D", 1),
		// Same uptime as b, later Since, higher rate: rate must still win
		// field-wise while b's (Since, Flags) identity survives.
		mk("c", 99, 150, 2*time.Hour, sim.Epoch.Add(-time.Hour), "DT", 1),
		mk("d", 10, 400, 30*time.Minute, sim.Epoch.Add(-30*time.Minute), "P", 2),
		nil,
	}
	ref := mantra.MergeSnapshots("aggregate", sim.Epoch, snaps...)
	perm := []int{0, 1, 2, 3, 4}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		shuffled := make([]*tables.Snapshot, len(snaps))
		for i, p := range perm {
			shuffled[i] = snaps[p]
		}
		got := mantra.MergeSnapshots("aggregate", sim.Epoch, shuffled...)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("merge depends on input order (perm %v):\nref: %+v\ngot: %+v", perm, ref, got)
		}
	}
	// Sanity on the reference itself: one pair, rate/packets are maxima,
	// uptime belongs to the dominant (longest-lived, earliest-Since) entry.
	if len(ref.Pairs) != 1 {
		t.Fatalf("pairs = %d", len(ref.Pairs))
	}
	p := ref.Pairs[0]
	if p.RateKbps != 99 || p.Packets != 400 || p.Uptime != 2*time.Hour || p.Flags != "D" {
		t.Errorf("merged pair = %+v", p)
	}
	if len(ref.Routes) != 1 || ref.Routes[0].Metric != 1 || ref.Routes[0].Uptime != 2*time.Hour {
		t.Errorf("merged route = %+v", ref.Routes[0])
	}
}

// TestMergeSnapshotsHandoffRace: during a shard handoff the dying
// worker's last snapshot of a target and the new owner's fresh one can
// reach the fan-in in the same merge. The newest sequence (latest At)
// must win outright — a withdrawn pair or route from the stale snapshot
// must not reappear in the aggregate — and the result must stay
// order-independent.
func TestMergeSnapshotsHandoffRace(t *testing.T) {
	src := addr.MustParse("1.1.1.1")
	gone := addr.MustParse("9.9.9.9")
	grp := addr.MustParse("224.1.1.1")
	stale := &tables.Snapshot{Target: "fixw", At: sim.Epoch, Pairs: tables.PairTable{
		{Source: src, Group: grp, RateKbps: 64, Packets: 100, Uptime: time.Hour},
		// Withdrawn by the time the new owner collects: must not survive.
		{Source: gone, Group: grp, RateKbps: 8, Packets: 10, Uptime: time.Minute},
	}, Routes: tables.RouteTable{
		{Prefix: addr.MustParsePrefix("10.0.0.0/8"), Metric: 1},
		{Prefix: addr.MustParsePrefix("99.0.0.0/8"), Metric: 1},
	}}
	fresh := &tables.Snapshot{Target: "fixw", At: sim.Epoch.Add(time.Second), Pairs: tables.PairTable{
		{Source: src, Group: grp, RateKbps: 32, Packets: 150, Uptime: time.Hour + time.Second},
	}, Routes: tables.RouteTable{
		{Prefix: addr.MustParsePrefix("10.0.0.0/8"), Metric: 3},
	}}
	other := &tables.Snapshot{Target: "ucsb-r1", At: sim.Epoch, Pairs: tables.PairTable{
		{Source: src, Group: grp, RateKbps: 16, Packets: 50, Uptime: 30 * time.Minute},
	}}
	ref := mantra.MergeSnapshots("fleet", sim.Epoch.Add(time.Second), stale, fresh, other)
	if len(ref.Pairs) != 1 {
		t.Fatalf("pairs = %d, want 1 (stale 9.9.9.9 pair must not survive handoff)", len(ref.Pairs))
	}
	p := ref.Pairs[0]
	if p.Packets != 150 || p.Uptime != time.Hour+time.Second {
		t.Errorf("merged pair = %+v, want fresh fixw observation to dominate", p)
	}
	if p.RateKbps != 32 {
		t.Errorf("rate = %v: stale fixw snapshot leaked into the field-wise max", p.RateKbps)
	}
	if len(ref.Routes) != 1 {
		t.Fatalf("routes = %d, want 1 (stale 99/8 must not survive)", len(ref.Routes))
	}
	if ref.Routes[0].Metric != 3 {
		t.Errorf("route metric = %d, want the fresh snapshot's 3, not the stale 1", ref.Routes[0].Metric)
	}

	// Order independence holds with duplicates in play.
	snaps := []*tables.Snapshot{stale, fresh, other, nil}
	perm := []int{0, 1, 2, 3}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		shuffled := make([]*tables.Snapshot, len(snaps))
		for i, pi := range perm {
			shuffled[i] = snaps[pi]
		}
		got := mantra.MergeSnapshots("fleet", sim.Epoch.Add(time.Second), shuffled...)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("handoff-race merge depends on input order (perm %v):\nref: %+v\ngot: %+v", perm, ref, got)
		}
	}

	// Equal At (no real race — e.g. the engine's own aggregate fed back)
	// falls through to the commutative entry-level merge.
	tie := &tables.Snapshot{Target: "fixw", At: sim.Epoch, Pairs: tables.PairTable{
		{Source: src, Group: grp, RateKbps: 80, Packets: 90, Uptime: time.Hour},
	}}
	both := mantra.MergeSnapshots("fleet", sim.Epoch, stale, tie)
	if len(both.Pairs) != 2 {
		t.Fatalf("equal-At pairs = %d, want 2 (entry-level merge)", len(both.Pairs))
	}
	if both.Pairs[0].RateKbps != 80 {
		t.Errorf("equal-At merge rate = %v, want field-wise max 80", both.Pairs[0].RateKbps)
	}
}

func TestConcurrentCollectionWithAggregation(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	m.EnableAggregation()
	for i := 0; i < 4; i++ {
		n.Step()
		stats, err := m.RunCycleConcurrent(n.Now())
		if err != nil {
			t.Fatal(err)
		}
		// Two real targets plus the aggregate.
		if len(stats) != 3 {
			t.Fatalf("stats = %d entries", len(stats))
		}
		agg := stats[2]
		if agg.Target != mantra.AggregateTarget {
			t.Fatalf("last stats target = %q", agg.Target)
		}
		// The combined view can never see fewer sessions or participants
		// than any single vantage.
		for _, st := range stats[:2] {
			if agg.Sessions < st.Sessions {
				t.Errorf("aggregate sessions %d < %s's %d", agg.Sessions, st.Target, st.Sessions)
			}
			if agg.Participants < st.Participants {
				t.Errorf("aggregate participants %d < %s's %d", agg.Participants, st.Target, st.Participants)
			}
			if agg.Routes < st.Routes {
				t.Errorf("aggregate routes %d < %s's %d", agg.Routes, st.Target, st.Routes)
			}
		}
	}
	if m.Series(mantra.AggregateTarget, mantra.MetricSessions).Len() != 4 {
		t.Error("aggregate series not maintained")
	}
	if m.Latest(mantra.AggregateTarget) == nil {
		t.Error("aggregate snapshot not stored")
	}
	if m.Log().Cycles(mantra.AggregateTarget) != 4 {
		t.Error("aggregate cycles not logged")
	}
}

func TestConcurrentCollectionMatchesSequential(t *testing.T) {
	// The same network monitored concurrently and sequentially must
	// produce identical statistics (collection itself is read-only).
	n1, m1 := newMonitoredNetwork(t)
	n2, m2 := newMonitoredNetwork(t)
	for i := 0; i < 3; i++ {
		n1.Step()
		n2.Step()
		s1, err := m1.RunCycle(n1.Now())
		if err != nil {
			t.Fatal(err)
		}
		s2, err := m2.RunCycleConcurrent(n2.Now())
		if err != nil {
			t.Fatal(err)
		}
		if len(s1) != len(s2) {
			t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
		}
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Errorf("cycle %d target %d: %+v vs %+v", i, j, s1[j], s2[j])
			}
		}
	}
}

func TestAggregationRecoversPostTransitionCoverage(t *testing.T) {
	// The paper's concluding observation: after the sparse-mode
	// transition, no single vantage tracks global usage; results must be
	// aggregated from multiple collection points. Monitor FIXW, the UCSB
	// router and a native domain border, and show the combined view sees
	// meaningfully more than FIXW alone.
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 6
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-r1", "dom00-gw"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		n.Step()
	}
	for _, d := range n.Topo.Domains() {
		if d.Name != "ucsb" {
			n.TransitionDomain(d.Name)
		}
	}
	m := mantra.New()
	m.EnableAggregation()
	for _, name := range []string{"fixw", "ucsb-r1", "dom00-gw"} {
		r := n.Router(name)
		r.Password = "pw"
		m.AddTarget(mantra.Target{
			Name:     name,
			Dialer:   collect.PipeDialer{Router: r},
			Password: "pw",
			Prompt:   name + "> ",
		})
	}
	var fixwParts, aggParts float64
	for i := 0; i < 10; i++ {
		n.Step()
		stats, err := m.RunCycleConcurrent(n.Now())
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range stats {
			switch st.Target {
			case "fixw":
				fixwParts += float64(st.Participants)
			case mantra.AggregateTarget:
				aggParts += float64(st.Participants)
			}
		}
	}
	if aggParts <= fixwParts*1.1 {
		t.Errorf("aggregate view (%0.f) does not meaningfully exceed FIXW alone (%0.f)", aggParts, fixwParts)
	}
	t.Logf("post-transition participant coverage: fixw=%.0f aggregate=%.0f (+%.0f%%)",
		fixwParts/10, aggParts/10, 100*(aggParts-fixwParts)/fixwParts)
}

func TestMonitorRouteStability(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	for i := 0; i < 12; i++ {
		n.Step()
		if _, err := m.RunCycle(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	rs := m.RouteStability("fixw")
	if rs == nil {
		t.Fatal("no stability tracker")
	}
	if rs.Cycles() != 12 {
		t.Errorf("cycles = %d", rs.Cycles())
	}
	sum := rs.Summary()
	if sum.Prefixes < 100 {
		t.Errorf("tracked prefixes = %d", sum.Prefixes)
	}
	if sum.MeanAvailability <= 0 || sum.MeanAvailability > 1 {
		t.Errorf("availability = %f", sum.MeanAvailability)
	}
	// With the flap model on, some prefixes should have flapped.
	if sum.TotalFlaps == 0 {
		t.Log("no flaps in 12 cycles (possible at this seed)")
	}
	if m.RouteStability("ghost") != nil {
		t.Error("unknown target should be nil")
	}
}
