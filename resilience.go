package mantra

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/tables"
)

// ErrAllTargetsFailed reports a cycle in which no target produced a
// snapshot — the only condition under which a cycle returns an error.
// Individual target failures degrade the cycle instead of aborting it.
var ErrAllTargetsFailed = errors.New("all targets failed to collect")

// CollectResult is one target's outcome within a monitoring cycle.
type CollectResult struct {
	Target string
	// Status is ok / retried / degraded / breaker-open.
	Status collect.Status
	// Attempts is how many collection attempts were made (0 when the
	// breaker skipped the target).
	Attempts int
	// Err is the failure when the target did not produce a snapshot.
	Err error
	// Stats holds the cycle statistics on success, nil otherwise.
	Stats *CycleStats
}

// TargetHealth is the per-target collection health view; see
// collect.TargetHealth for the fields.
type TargetHealth = collect.TargetHealth

// SetCollectPolicy replaces the resilience policy — retries, backoff,
// breaker thresholds, validation — governing all collection. It resets
// the per-target breakers and health ledger, so call it before the first
// cycle (or deliberately, to reset state).
func (m *Monitor) SetCollectPolicy(p collect.Policy) {
	m.collector = collect.NewCollector(p)
}

// Health returns every registered target's collection health, in
// registration order, including targets not yet collected. This is the
// view served over HTTP at /health.
func (m *Monitor) Health() []TargetHealth {
	out := make([]TargetHealth, 0, len(m.targets))
	for _, t := range m.targets {
		h, _ := m.collector.TargetHealth(t.Name)
		out = append(out, h)
	}
	return out
}

// LastResults returns the per-target outcomes of the most recent cycle,
// in registration order, or nil before the first cycle.
func (m *Monitor) LastResults() []CollectResult {
	return append([]CollectResult(nil), m.lastResults...)
}

// cycleOutcome carries one target's collection phase output into the
// (order-preserving) processing phase.
type cycleOutcome struct {
	res collect.Result
	sn  *tables.Snapshot
}

// collectTarget runs the resilient collection of one target and, on
// success, builds its snapshot. Parse failures count against the target's
// breaker: a router emitting unparseable dumps is as unhealthy as one
// refusing logins. Safe for concurrent use across targets.
func (m *Monitor) collectTarget(t Target, now time.Time) cycleOutcome {
	res := m.collector.Collect(t, m.Commands, now)
	if res.Err != nil {
		return cycleOutcome{res: res}
	}
	sn, err := tables.BuildSnapshot(res.Dumps)
	if err != nil {
		err = fmt.Errorf("collect %s: snapshot rejected: %w", t.Name, err)
		m.collector.RecordFailure(t.Name, now, err)
		res.Status = collect.StatusDegraded
		res.Err = err
		return cycleOutcome{res: res}
	}
	return cycleOutcome{res: res, sn: sn}
}

// processOutcomes turns a cycle's collection outcomes into results:
// successful snapshots are logged, ingested and published in registration
// order; failed targets are skipped with an explicit gap marker on their
// series. The cycle errs only when every target failed.
func (m *Monitor) processOutcomes(now time.Time, outcomes []cycleOutcome) ([]CycleStats, error) {
	var out []CycleStats
	var snaps []*tables.Snapshot
	results := make([]CollectResult, 0, len(outcomes))
	failed := 0
	for _, oc := range outcomes {
		cr := CollectResult{
			Target:   oc.res.Target,
			Status:   oc.res.Status,
			Attempts: oc.res.Attempts,
			Err:      oc.res.Err,
		}
		if oc.sn == nil {
			failed++
			m.proc.MarkGap(oc.res.Target, now)
			reason := ""
			if oc.res.Err != nil {
				reason = oc.res.Err.Error()
			}
			m.log.MarkGap(oc.res.Target, now, reason)
			m.archiveAppendGap(oc.res.Target, now, reason)
			results = append(results, cr)
			continue
		}
		rec := m.log.Append(oc.sn)
		m.archiveAppendDelta(oc.sn.Target, rec, uint64(len(oc.sn.Pairs)+len(oc.sn.Routes)))
		st := m.proc.Ingest(oc.sn)
		m.observeStability(oc.sn)
		m.latest[oc.sn.Target] = oc.sn
		m.refreshTables(oc.sn.Target, oc.sn)
		cr.Stats = &st
		out = append(out, st)
		results = append(results, cr)
		snaps = append(snaps, oc.sn)
	}
	if m.aggregate && len(snaps) > 0 {
		agg := MergeSnapshots(AggregateTarget, now, snaps...)
		rec := m.log.Append(agg)
		m.archiveAppendDelta(AggregateTarget, rec, uint64(len(agg.Pairs)+len(agg.Routes)))
		st := m.proc.Ingest(agg)
		m.latest[AggregateTarget] = agg
		m.refreshTables(AggregateTarget, agg)
		out = append(out, st)
	}
	m.archiveAfterCycle(now)
	m.lastResults = results
	if len(outcomes) > 0 && failed == len(outcomes) {
		return out, fmt.Errorf("mantra: %w", ErrAllTargetsFailed)
	}
	return out, nil
}
