package mantra

import (
	"errors"

	"repro/internal/core/collect"
	"repro/internal/core/process"
)

// ErrAllTargetsFailed reports a cycle in which no target produced a
// snapshot — the only condition under which a cycle returns an error.
// Individual target failures degrade the cycle instead of aborting it.
var ErrAllTargetsFailed = errors.New("all targets failed to collect")

// CollectResult is one target's outcome within a monitoring cycle.
type CollectResult struct {
	Target string
	// Status is ok / retried / degraded / breaker-open.
	Status collect.Status
	// Attempts is how many collection attempts were made (0 when the
	// breaker skipped the target).
	Attempts int
	// Err is the failure when the target did not produce a snapshot.
	Err error
	// Stats holds the cycle statistics on success, nil otherwise.
	Stats *CycleStats
}

// TargetHealth is the per-target collection health view; see
// collect.TargetHealth for the fields.
type TargetHealth = collect.TargetHealth

// SetCollectPolicy replaces the resilience policy — retries, backoff,
// breaker thresholds, validation — governing all collection. The
// per-target health ledger and breaker positions carry over into the
// new policy (new thresholds and cooldowns apply from the next
// transition), so a mid-run policy change no longer silently discards
// accumulated failure history. Use ResetCollectState for a deliberate
// wipe.
func (m *Monitor) SetCollectPolicy(p collect.Policy) {
	nc := collect.NewCollector(p)
	nc.CarryState(m.collector)
	m.collector = nc
}

// ResetCollectState wipes the per-target breakers and health ledger
// while keeping the current policy — the old SetCollectPolicy behavior,
// now opt-in.
func (m *Monitor) ResetCollectState() {
	m.collector = collect.NewCollector(m.collector.Policy())
}

// TargetHealthView is one /health target row: the collector's ledger —
// including the last successful cycle timestamp — plus the gap count,
// how many cycles produced no data for the target. Together they make
// blind windows first-class: an operator reads when the target last
// yielded data and how many cycles are explicitly missing, whether
// from collection failures or a shard handoff's dark cycles.
type TargetHealthView struct {
	TargetHealth
	GapCount int `json:"gap_count"`
}

// HealthView is the combined health object served over HTTP at /health:
// per-target collection health plus the anomaly rollup.
type HealthView struct {
	Targets   []TargetHealthView `json:"targets"`
	Anomalies AnomalyRollup      `json:"anomalies"`
}

// HealthView returns the combined health object served at /health.
func (m *Monitor) HealthView() HealthView {
	rows := make([]TargetHealthView, 0, len(m.targets))
	for _, t := range m.targets {
		h, _ := m.collector.TargetHealth(t.Name)
		if h.Target == "" {
			h.Target = t.Name // not yet collected: name the empty row
		}
		row := TargetHealthView{TargetHealth: h}
		if s := m.proc.Series(t.Name, process.MetricRoutes); s != nil {
			row.GapCount = s.GapCount()
		}
		rows = append(rows, row)
	}
	return HealthView{Targets: rows, Anomalies: m.proc.Rollup()}
}

// Health returns every registered target's collection health, in
// registration order, including targets not yet collected.
func (m *Monitor) Health() []TargetHealth {
	out := make([]TargetHealth, 0, len(m.targets))
	for _, t := range m.targets {
		h, _ := m.collector.TargetHealth(t.Name)
		out = append(out, h)
	}
	return out
}

// LastResults returns the per-target outcomes of the most recent cycle,
// in registration order, or nil before the first cycle.
func (m *Monitor) LastResults() []CollectResult {
	return append([]CollectResult(nil), m.lastResults...)
}
